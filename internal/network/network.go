// Package network implements the Boolean-network representation used
// throughout the mapper: a directed acyclic graph of logic nodes with
// primary inputs, primary outputs, and (for the sequential extension)
// edge-triggered latches on a single clock.
//
// Node functions are logic.Expr values over the names of the node's
// fanins. Latches break combinational cycles: a latch output behaves
// as a pseudo primary input and a latch input as a pseudo primary
// output of the combinational portion.
package network

import (
	"fmt"
	"sort"
	"strings"

	"dagcover/internal/logic"
)

// Node is a vertex of a Boolean network.
type Node struct {
	Name    string
	Fanins  []*Node
	Fanouts []*Node
	// Func is the node function over the fanin names. It is nil for
	// primary inputs and latch outputs.
	Func *logic.Expr
	// IsInput marks primary inputs.
	IsInput bool
}

// NumFanins returns the in-degree of n.
func (n *Node) NumFanins() int { return len(n.Fanins) }

// NumFanouts returns the out-degree of n (primary-output uses are not
// counted; use Network.IsOutput for those).
func (n *Node) NumFanouts() int { return len(n.Fanouts) }

// Latch is an edge-triggered storage element: at each clock edge the
// value of Input is transferred to Output. Init is the initial value.
type Latch struct {
	Input  *Node
	Output *Node // behaves as a pseudo primary input
	Init   bool
}

// Network is a Boolean network.
type Network struct {
	Name    string
	nodes   map[string]*Node
	order   []*Node // insertion order, for deterministic iteration
	inputs  []*Node
	outputs []*Node
	outSet  map[*Node]bool
	latches []*Latch
	latchOf map[*Node]*Latch // keyed by latch output node
}

// New returns an empty network with the given name.
func New(name string) *Network {
	return &Network{
		Name:    name,
		nodes:   map[string]*Node{},
		outSet:  map[*Node]bool{},
		latchOf: map[*Node]*Latch{},
	}
}

// AddInput creates a primary input node.
func (nw *Network) AddInput(name string) (*Node, error) {
	if _, dup := nw.nodes[name]; dup {
		return nil, fmt.Errorf("network: duplicate node name %q", name)
	}
	n := &Node{Name: name, IsInput: true}
	nw.nodes[name] = n
	nw.order = append(nw.order, n)
	nw.inputs = append(nw.inputs, n)
	return n, nil
}

// AddNode creates an internal node computing fn over the named fanins.
// Every fanin must already exist, and every variable of fn must be one
// of the fanin names.
func (nw *Network) AddNode(name string, fanins []string, fn *logic.Expr) (*Node, error) {
	if _, dup := nw.nodes[name]; dup {
		return nil, fmt.Errorf("network: duplicate node name %q", name)
	}
	if fn == nil {
		return nil, fmt.Errorf("network: node %q has no function", name)
	}
	faninNodes := make([]*Node, len(fanins))
	seen := map[string]bool{}
	for i, f := range fanins {
		fi, ok := nw.nodes[f]
		if !ok {
			return nil, fmt.Errorf("network: node %q references unknown fanin %q", name, f)
		}
		if seen[f] {
			return nil, fmt.Errorf("network: node %q lists fanin %q twice", name, f)
		}
		seen[f] = true
		faninNodes[i] = fi
	}
	for _, v := range fn.Vars() {
		if !seen[v] {
			return nil, fmt.Errorf("network: node %q function uses %q which is not a fanin", name, v)
		}
	}
	n := &Node{Name: name, Fanins: faninNodes, Func: fn}
	for _, fi := range faninNodes {
		fi.Fanouts = append(fi.Fanouts, n)
	}
	nw.nodes[name] = n
	nw.order = append(nw.order, n)
	return n, nil
}

// MarkOutput declares an existing node to be a primary output.
func (nw *Network) MarkOutput(name string) error {
	n, ok := nw.nodes[name]
	if !ok {
		return fmt.Errorf("network: cannot mark unknown node %q as output", name)
	}
	if nw.outSet[n] {
		return nil
	}
	nw.outSet[n] = true
	nw.outputs = append(nw.outputs, n)
	return nil
}

// AddLatch creates a latch from the named input node to a fresh
// pseudo-input node with the given name.
func (nw *Network) AddLatch(inputName, outputName string, init bool) (*Latch, error) {
	if _, ok := nw.nodes[inputName]; !ok {
		return nil, fmt.Errorf("network: latch input %q does not exist", inputName)
	}
	if _, err := nw.AddLatchOutput(outputName); err != nil {
		return nil, err
	}
	return nw.ConnectLatch(inputName, outputName, init)
}

// AddLatchOutput creates a latch-output pseudo input before its
// driving logic exists, enabling cyclic sequential circuits; it must
// later be completed with ConnectLatch.
func (nw *Network) AddLatchOutput(name string) (*Node, error) {
	if _, dup := nw.nodes[name]; dup {
		return nil, fmt.Errorf("network: duplicate node name %q", name)
	}
	// A latch output is a pseudo input of the combinational portion:
	// no function, no fanins, but not listed among the primary inputs.
	out := &Node{Name: name}
	nw.nodes[name] = out
	nw.order = append(nw.order, out)
	return out, nil
}

// ConnectLatch completes a latch whose output node was created with
// AddLatchOutput by attaching its input node.
func (nw *Network) ConnectLatch(inputName, outputName string, init bool) (*Latch, error) {
	in, ok := nw.nodes[inputName]
	if !ok {
		return nil, fmt.Errorf("network: latch input %q does not exist", inputName)
	}
	out, ok := nw.nodes[outputName]
	if !ok {
		return nil, fmt.Errorf("network: latch output %q does not exist", outputName)
	}
	if out.Func != nil || out.IsInput {
		return nil, fmt.Errorf("network: latch output %q is not a pseudo input", outputName)
	}
	if nw.latchOf[out] != nil {
		return nil, fmt.Errorf("network: latch output %q already connected", outputName)
	}
	l := &Latch{Input: in, Output: out, Init: init}
	nw.latches = append(nw.latches, l)
	nw.latchOf[out] = l
	return l, nil
}

// Node returns the node with the given name, or nil.
func (nw *Network) Node(name string) *Node { return nw.nodes[name] }

// Inputs returns the primary inputs in creation order.
func (nw *Network) Inputs() []*Node { return nw.inputs }

// Outputs returns the primary outputs in declaration order.
func (nw *Network) Outputs() []*Node { return nw.outputs }

// Latches returns the latches in creation order.
func (nw *Network) Latches() []*Latch { return nw.latches }

// LatchFor returns the latch whose output is n, or nil.
func (nw *Network) LatchFor(n *Node) *Latch { return nw.latchOf[n] }

// IsOutput reports whether n is a primary output.
func (nw *Network) IsOutput(n *Node) bool { return nw.outSet[n] }

// Nodes returns all nodes in creation order.
func (nw *Network) Nodes() []*Node { return nw.order }

// NumNodes returns the total node count, including inputs.
func (nw *Network) NumNodes() int { return len(nw.order) }

// NumGates returns the number of internal (function) nodes.
func (nw *Network) NumGates() int {
	n := 0
	for _, nd := range nw.order {
		if nd.Func != nil {
			n++
		}
	}
	return n
}

// sourceLike reports whether n has no combinational fanins (PI or
// latch output).
func sourceLike(n *Node) bool { return n.Func == nil }

// TopoSort returns the nodes in a topological order of the
// combinational graph (latch outputs count as sources, latch inputs
// are ordinary nodes). It reports an error on a combinational cycle.
func (nw *Network) TopoSort() ([]*Node, error) {
	indeg := make(map[*Node]int, len(nw.order))
	queue := make([]*Node, 0, len(nw.order))
	for _, n := range nw.order {
		indeg[n] = len(n.Fanins)
		if len(n.Fanins) == 0 { // sources and zero-fanin (constant) nodes
			queue = append(queue, n)
		}
	}
	out := make([]*Node, 0, len(nw.order))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, fo := range n.Fanouts {
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}
	if len(out) != len(nw.order) {
		cyc := make([]string, 0, 8)
		for _, n := range nw.order {
			if indeg[n] > 0 {
				cyc = append(cyc, n.Name)
				if len(cyc) == 8 {
					break
				}
			}
		}
		return nil, fmt.Errorf("network %q: combinational cycle through %s", nw.Name, strings.Join(cyc, ", "))
	}
	return out, nil
}

// Levels returns each node's depth: sources are level 0 and every
// other node is 1 + max fanin level.
func (nw *Network) Levels() (map[*Node]int, error) {
	topo, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	lv := make(map[*Node]int, len(topo))
	for _, n := range topo {
		if sourceLike(n) {
			lv[n] = 0
			continue
		}
		max := 0
		for _, fi := range n.Fanins {
			if lv[fi] > max {
				max = lv[fi]
			}
		}
		lv[n] = max + 1
	}
	return lv, nil
}

// Depth returns the maximum level over all nodes.
func (nw *Network) Depth() (int, error) {
	lv, err := nw.Levels()
	if err != nil {
		return 0, err
	}
	max := 0
	for _, d := range lv {
		if d > max {
			max = d
		}
	}
	return max, nil
}

// Check validates internal consistency: fanin/fanout symmetry, function
// supports, output registration, and acyclicity.
func (nw *Network) Check() error {
	for _, n := range nw.order {
		if n.Func == nil && len(n.Fanins) != 0 {
			return fmt.Errorf("network: source node %q has fanins", n.Name)
		}
		if n.Func == nil && !n.IsInput && nw.latchOf[n] == nil {
			return fmt.Errorf("network: latch output %q was never connected", n.Name)
		}
		for _, fi := range n.Fanins {
			if nw.nodes[fi.Name] != fi {
				return fmt.Errorf("network: node %q has foreign fanin %q", n.Name, fi.Name)
			}
			found := false
			for _, fo := range fi.Fanouts {
				if fo == n {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("network: fanout list of %q is missing %q", fi.Name, n.Name)
			}
		}
		if n.Func != nil {
			names := map[string]bool{}
			for _, fi := range n.Fanins {
				names[fi.Name] = true
			}
			for _, v := range n.Func.Vars() {
				if !names[v] {
					return fmt.Errorf("network: node %q function uses non-fanin %q", n.Name, v)
				}
			}
		}
	}
	if len(nw.outputs) == 0 && len(nw.latches) == 0 {
		return fmt.Errorf("network %q: no primary outputs", nw.Name)
	}
	_, err := nw.TopoSort()
	return err
}

// TransitiveFanin returns the set of nodes in the transitive fanin
// cone of root, including root itself.
func TransitiveFanin(root *Node) map[*Node]bool {
	seen := map[*Node]bool{}
	stack := []*Node{root}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, n.Fanins...)
	}
	return seen
}

// Sweep removes internal nodes that neither reach a primary output nor
// a latch input. It returns the number of nodes removed.
func (nw *Network) Sweep() int {
	live := map[*Node]bool{}
	var roots []*Node
	roots = append(roots, nw.outputs...)
	for _, l := range nw.latches {
		roots = append(roots, l.Input)
	}
	for _, r := range roots {
		for n := range TransitiveFanin(r) {
			live[n] = true
		}
	}
	removed := 0
	keep := nw.order[:0]
	for _, n := range nw.order {
		if live[n] || n.Func == nil { // keep all sources
			keep = append(keep, n)
			continue
		}
		removed++
		delete(nw.nodes, n.Name)
		for _, fi := range n.Fanins {
			fi.Fanouts = removeNode(fi.Fanouts, n)
		}
	}
	nw.order = keep
	return removed
}

func removeNode(s []*Node, n *Node) []*Node {
	out := s[:0]
	for _, x := range s {
		if x != n {
			out = append(out, x)
		}
	}
	return out
}

// Stats summarizes a network.
type Stats struct {
	Inputs, Outputs, Gates, Latches int
	Depth                           int
	MaxFanin, MaxFanout             int
}

// Stats computes summary statistics.
func (nw *Network) Stats() (Stats, error) {
	d, err := nw.Depth()
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Inputs:  len(nw.inputs),
		Outputs: len(nw.outputs),
		Gates:   nw.NumGates(),
		Latches: len(nw.latches),
		Depth:   d,
	}
	for _, n := range nw.order {
		if len(n.Fanins) > s.MaxFanin {
			s.MaxFanin = len(n.Fanins)
		}
		if len(n.Fanouts) > s.MaxFanout {
			s.MaxFanout = len(n.Fanouts)
		}
	}
	return s, nil
}

// String renders the stats compactly.
func (s Stats) String() string {
	return fmt.Sprintf("pi=%d po=%d gates=%d latches=%d depth=%d maxfanin=%d maxfanout=%d",
		s.Inputs, s.Outputs, s.Gates, s.Latches, s.Depth, s.MaxFanin, s.MaxFanout)
}

// Clone returns a deep copy of the network (sharing no nodes).
func (nw *Network) Clone() *Network {
	c := New(nw.Name)
	for _, n := range nw.order {
		if n.IsInput {
			if _, err := c.AddInput(n.Name); err != nil {
				panic(err) // cannot happen: names were unique
			}
		}
	}
	// Latch outputs must exist before nodes that read them; create
	// placeholder pseudo inputs now and fix latch records at the end.
	for _, l := range nw.latches {
		if _, dup := c.nodes[l.Output.Name]; dup {
			panic(fmt.Sprintf("network: Clone: duplicate latch output %q", l.Output.Name))
		}
		ph := &Node{Name: l.Output.Name}
		c.nodes[ph.Name] = ph
		c.order = append(c.order, ph)
	}
	topo, err := nw.TopoSort()
	if err != nil {
		panic(fmt.Sprintf("network: Clone of cyclic network: %v", err))
	}
	for _, n := range topo {
		if n.Func == nil {
			continue
		}
		names := make([]string, len(n.Fanins))
		for i, fi := range n.Fanins {
			names[i] = fi.Name
		}
		if _, err := c.AddNode(n.Name, names, n.Func.Clone()); err != nil {
			panic(err)
		}
	}
	for _, o := range nw.outputs {
		if err := c.MarkOutput(o.Name); err != nil {
			panic(err)
		}
	}
	for _, l := range nw.latches {
		out := c.nodes[l.Output.Name]
		cl := &Latch{Input: c.nodes[l.Input.Name], Output: out, Init: l.Init}
		c.latches = append(c.latches, cl)
		c.latchOf[out] = cl
	}
	return c
}

// SortedNodeNames returns all node names sorted; useful for
// deterministic output in tools and tests.
func (nw *Network) SortedNodeNames() []string {
	names := make([]string, 0, len(nw.nodes))
	for name := range nw.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
