package network

import (
	"math/rand"
	"strings"
	"testing"

	"dagcover/internal/logic"
)

// buildSmall returns the network f = (a AND b) OR c, g = NOT f.
func buildSmall(t *testing.T) *Network {
	t.Helper()
	nw := New("small")
	for _, in := range []string{"a", "b", "c"} {
		if _, err := nw.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := nw.AddNode("f", []string{"a", "b", "c"}, logic.MustParse("a*b+c")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode("g", []string{"f"}, logic.MustParse("!f")); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput("g"); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestBuildAndCheck(t *testing.T) {
	nw := buildSmall(t)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	if got := nw.NumGates(); got != 2 {
		t.Errorf("NumGates = %d, want 2", got)
	}
	s, err := nw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Inputs != 3 || s.Outputs != 1 || s.Depth != 2 {
		t.Errorf("stats = %v", s)
	}
}

func TestAddErrors(t *testing.T) {
	nw := New("err")
	if _, err := nw.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddInput("a"); err == nil {
		t.Error("duplicate input accepted")
	}
	if _, err := nw.AddNode("n", []string{"zz"}, logic.MustParse("zz")); err == nil {
		t.Error("unknown fanin accepted")
	}
	if _, err := nw.AddNode("n", []string{"a"}, logic.MustParse("a*b")); err == nil {
		t.Error("function over non-fanin accepted")
	}
	if _, err := nw.AddNode("n", []string{"a", "a"}, logic.MustParse("a")); err == nil {
		t.Error("duplicate fanin accepted")
	}
	if _, err := nw.AddNode("a", []string{"a"}, logic.MustParse("a")); err == nil {
		t.Error("name collision with input accepted")
	}
	if err := nw.MarkOutput("nope"); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestTopoSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		nw := randomNetwork(t, rng, 4, 40)
		topo, err := nw.TopoSort()
		if err != nil {
			t.Fatal(err)
		}
		pos := map[*Node]int{}
		for i, n := range topo {
			pos[n] = i
		}
		if len(topo) != nw.NumNodes() {
			t.Fatalf("topo has %d nodes, network has %d", len(topo), nw.NumNodes())
		}
		for _, n := range topo {
			for _, fi := range n.Fanins {
				if pos[fi] >= pos[n] {
					t.Fatalf("fanin %q not before %q in topo order", fi.Name, n.Name)
				}
			}
		}
	}
}

// randomNetwork builds a random DAG with the given inputs and gates.
func randomNetwork(t *testing.T, rng *rand.Rand, nIn, nGates int) *Network {
	t.Helper()
	nw := New("rand")
	var names []string
	for i := 0; i < nIn; i++ {
		name := "i" + string(rune('0'+i))
		if _, err := nw.AddInput(name); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	for g := 0; g < nGates; g++ {
		name := "g" + itoa(g)
		k := 1 + rng.Intn(3)
		if k > len(names) {
			k = len(names)
		}
		seen := map[string]bool{}
		var fanins []string
		for len(fanins) < k {
			f := names[rng.Intn(len(names))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		kids := make([]*logic.Expr, len(fanins))
		for i, f := range fanins {
			kids[i] = logic.Variable(f)
		}
		var fn *logic.Expr
		switch rng.Intn(3) {
		case 0:
			fn = logic.Not(logic.And(kids...))
		case 1:
			fn = logic.Or(kids...)
		default:
			fn = logic.Xor(kids...)
		}
		if _, err := nw.AddNode(name, fanins, fn); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if err := nw.MarkOutput(names[len(names)-1]); err != nil {
		t.Fatal(err)
	}
	return nw
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b []byte
	for v > 0 {
		b = append([]byte{byte('0' + v%10)}, b...)
		v /= 10
	}
	return string(b)
}

func TestCycleDetection(t *testing.T) {
	nw := New("cyc")
	if _, err := nw.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	n1, err := nw.AddNode("x", []string{"a"}, logic.MustParse("!a"))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := nw.AddNode("y", []string{"x"}, logic.MustParse("!x"))
	if err != nil {
		t.Fatal(err)
	}
	// Manually create a cycle x -> y -> x.
	n1.Fanins = append(n1.Fanins, n2)
	n2.Fanouts = append(n2.Fanouts, n1)
	if _, err := nw.TopoSort(); err == nil {
		t.Error("cycle not detected")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestLatchesBreakCycles(t *testing.T) {
	// A toggle flip-flop: q' = !q through a latch.
	nw := New("tff")
	if _, err := nw.AddLatch("nq", "q", false); err == nil {
		t.Error("latch with missing input accepted")
	}
	if _, err := nw.AddInput("en"); err != nil {
		t.Fatal(err)
	}
	// Create latch output first via a two-step pattern: placeholder.
	// Build: q (latch out), nq = q XOR en, latch(nq -> q).
	// AddLatch needs the input to exist, so create nq after q; use the
	// placeholder trick through a fresh network.
	nw2 := New("tff")
	if _, err := nw2.AddInput("en"); err != nil {
		t.Fatal(err)
	}
	// Stage pseudo input then logic then latch referencing both.
	if _, err := nw2.AddInput("q_tmp"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw2.AddNode("nq", []string{"q_tmp", "en"}, logic.MustParse("q_tmp^en")); err != nil {
		t.Fatal(err)
	}
	l, err := nw2.AddLatch("nq", "q", false)
	if err != nil {
		t.Fatal(err)
	}
	if l.Output.Name != "q" || l.Input.Name != "nq" {
		t.Errorf("latch endpoints wrong: %v -> %v", l.Input.Name, l.Output.Name)
	}
	if _, err := nw2.TopoSort(); err != nil {
		t.Errorf("latched network should be acyclic: %v", err)
	}
	if nw2.LatchFor(l.Output) != l {
		t.Error("LatchFor lookup failed")
	}
}

func TestSimulator(t *testing.T) {
	nw := buildSmall(t)
	sim, err := NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	// g = !(a*b+c). Try all 8 assignments packed into one word.
	in := map[string]uint64{
		"a": 0xAA, // 10101010
		"b": 0xCC, // 11001100
		"c": 0xF0, // 11110000
	}
	out, err := sim.RunOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a := in["a"]>>uint(r)&1 == 1
		b := in["b"]>>uint(r)&1 == 1
		c := in["c"]>>uint(r)&1 == 1
		want := !(a && b || c)
		got := out["g"]>>uint(r)&1 == 1
		if got != want {
			t.Errorf("row %d: got %v want %v", r, got, want)
		}
	}
	if _, err := sim.Run(map[string]uint64{"a": 0}); err == nil {
		t.Error("missing input not reported")
	}
}

func TestSweep(t *testing.T) {
	nw := buildSmall(t)
	// Add a dangling node; sweep should remove it.
	if _, err := nw.AddNode("dead", []string{"a"}, logic.MustParse("!a")); err != nil {
		t.Fatal(err)
	}
	if removed := nw.Sweep(); removed != 1 {
		t.Errorf("Sweep removed %d, want 1", removed)
	}
	if nw.Node("dead") != nil {
		t.Error("dead node still present")
	}
	if err := nw.Check(); err != nil {
		t.Errorf("network invalid after sweep: %v", err)
	}
	// Fanout list of a must no longer contain dead.
	for _, fo := range nw.Node("a").Fanouts {
		if fo.Name == "dead" {
			t.Error("stale fanout after sweep")
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	nw := buildSmall(t)
	c := nw.Clone()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if c.Node("f") == nw.Node("f") {
		t.Error("clone shares nodes with the original")
	}
	// Mutating the clone must not affect the original.
	if _, err := c.AddNode("extra", []string{"g"}, logic.MustParse("!g")); err != nil {
		t.Fatal(err)
	}
	if nw.Node("extra") != nil {
		t.Error("clone mutation leaked into original")
	}
	// Same functional behaviour.
	s1, _ := NewSimulator(nw)
	s2, _ := NewSimulator(c)
	in := map[string]uint64{"a": 0x1234, "b": 0xABCD, "c": 0x5678}
	o1, _ := s1.RunOutputs(in)
	o2, _ := s2.RunOutputs(in)
	if o1["g"] != o2["g"] {
		t.Error("clone computes a different function")
	}
}

func TestCloneWithLatches(t *testing.T) {
	nw := New("seq")
	if _, err := nw.AddInput("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode("n", []string{"d"}, logic.MustParse("!d")); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddLatch("n", "q", true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode("out", []string{"q"}, logic.MustParse("!q")); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput("out"); err != nil {
		t.Fatal(err)
	}
	c := nw.Clone()
	if len(c.Latches()) != 1 {
		t.Fatalf("clone has %d latches, want 1", len(c.Latches()))
	}
	l := c.Latches()[0]
	if l.Input.Name != "n" || l.Output.Name != "q" || !l.Init {
		t.Errorf("clone latch corrupted: %+v", l)
	}
	if l.Input == nw.Latches()[0].Input {
		t.Error("clone latch shares nodes with original")
	}
}

func TestTransitiveFanin(t *testing.T) {
	nw := buildSmall(t)
	cone := TransitiveFanin(nw.Node("g"))
	if len(cone) != 5 {
		t.Errorf("TFI size = %d, want 5", len(cone))
	}
	cone = TransitiveFanin(nw.Node("a"))
	if len(cone) != 1 {
		t.Errorf("TFI of input size = %d, want 1", len(cone))
	}
}

func TestLevels(t *testing.T) {
	nw := buildSmall(t)
	lv, err := nw.Levels()
	if err != nil {
		t.Fatal(err)
	}
	if lv[nw.Node("a")] != 0 || lv[nw.Node("f")] != 1 || lv[nw.Node("g")] != 2 {
		t.Errorf("levels wrong: a=%d f=%d g=%d", lv[nw.Node("a")], lv[nw.Node("f")], lv[nw.Node("g")])
	}
}
