package verify

import (
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/logic"
	"dagcover/internal/network"
	"dagcover/internal/retime"
)

func TestSequentialSelfEquivalence(t *testing.T) {
	for _, nw := range []*network.Network{
		bench.Correlator(6),
		bench.PipelinedALU(4, 1),
		bench.ShiftRegister(4),
	} {
		if err := Sequential(nw, nw.Clone(), SeqOptions{}); err != nil {
			t.Errorf("%s: self-equivalence failed: %v", nw.Name, err)
		}
	}
}

func TestSequentialDetectsDifference(t *testing.T) {
	// A 3-stage shift register vs a pipeline that inverts its input:
	// functionally different at every aligned shift.
	c := bench.ShiftRegister(3)
	e := network.New("inv")
	if _, err := e.AddInput("x"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.AddNode("n", []string{"x"}, logic.MustParse("!x")); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		name := "q" + string(rune('0'+i))
		src := "n"
		if i > 1 {
			src = "q" + string(rune('0'+i-1))
		}
		if _, err := e.AddLatch(src, name, false); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.AddNode("y", []string{"q3"}, logic.MustParse("q3")); err != nil {
		t.Fatal(err)
	}
	if err := e.MarkOutput("y"); err != nil {
		t.Fatal(err)
	}
	if err := Sequential(c, e, SeqOptions{MaxShift: 2}); err == nil {
		t.Error("inverted pipeline accepted as equivalent")
	}
}

func TestSequentialRetimedEquivalence(t *testing.T) {
	for _, nw := range []*network.Network{
		bench.PipelinedALU(4, 2),
		bench.Correlator(8),
	} {
		rt, _, err := retimeMin(nw)
		if err != nil {
			t.Fatal(err)
		}
		if err := Sequential(nw, rt, SeqOptions{Cycles: 80, MaxShift: len(nw.Latches())}); err != nil {
			t.Errorf("%s: retimed circuit not sequentially equivalent: %v", nw.Name, err)
		}
	}
}

func retimeMin(nw *network.Network) (*network.Network, float64, error) {
	p, r, err := retime.MinPeriod(nw, retime.UnitDelays)
	if err != nil {
		return nil, 0, err
	}
	out, err := retime.Apply(nw, retime.UnitDelays, r)
	return out, p, err
}

func TestSequentialInterfaceChecks(t *testing.T) {
	a := bench.ShiftRegister(2)
	b := bench.Correlator(2) // different inputs/outputs
	if err := Sequential(a, b, SeqOptions{}); err == nil {
		t.Error("mismatched interfaces accepted")
	}
}
