package verify

import (
	"strings"
	"testing"

	"dagcover/internal/libgen"
	"dagcover/internal/logic"
	"dagcover/internal/mapping"
	"dagcover/internal/network"
)

func net(t *testing.T, build func(nw *network.Network) error) *network.Network {
	t.Helper()
	nw := network.New("t")
	if err := build(nw); err != nil {
		t.Fatal(err)
	}
	return nw
}

func TestNetworksEquivalent(t *testing.T) {
	mk := func(fn string) *network.Network {
		return net(t, func(nw *network.Network) error {
			for _, v := range []string{"a", "b", "c"} {
				if _, err := nw.AddInput(v); err != nil {
					return err
				}
			}
			if _, err := nw.AddNode("f", []string{"a", "b", "c"}, logic.MustParse(fn)); err != nil {
				return err
			}
			return nw.MarkOutput("f")
		})
	}
	if err := Networks(mk("a*b+c"), mk("c+b*a"), Options{}); err != nil {
		t.Errorf("equivalent networks rejected: %v", err)
	}
	err := Networks(mk("a*b+c"), mk("a*b"), Options{})
	if err == nil {
		t.Error("inequivalent networks accepted")
	} else if !strings.Contains(err.Error(), "f") {
		t.Errorf("error does not name the failing output: %v", err)
	}
}

func TestNetworksRandomFallback(t *testing.T) {
	// More than ExhaustiveLimit inputs forces random vectors.
	mk := func(twist bool) *network.Network {
		return net(t, func(nw *network.Network) error {
			var vars []string
			var kids []*logic.Expr
			for i := 0; i < ExhaustiveLimit+2; i++ {
				v := "x" + string(rune('A'+i))
				if _, err := nw.AddInput(v); err != nil {
					return err
				}
				vars = append(vars, v)
				kids = append(kids, logic.Variable(v))
			}
			fn := logic.Xor(kids...)
			if twist {
				fn = logic.Not(logic.Not(fn))
			}
			if _, err := nw.AddNode("f", vars, fn); err != nil {
				return err
			}
			return nw.MarkOutput("f")
		})
	}
	if err := Networks(mk(false), mk(true), Options{Rounds: 8}); err != nil {
		t.Errorf("equivalent wide networks rejected: %v", err)
	}
	// Flip one: parity vs inverted parity differs everywhere.
	bad := net(t, func(nw *network.Network) error {
		var vars []string
		var kids []*logic.Expr
		for i := 0; i < ExhaustiveLimit+2; i++ {
			v := "x" + string(rune('A'+i))
			if _, err := nw.AddInput(v); err != nil {
				return err
			}
			vars = append(vars, v)
			kids = append(kids, logic.Variable(v))
		}
		if _, err := nw.AddNode("f", vars, logic.Not(logic.Xor(kids...))); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	if err := Networks(mk(false), bad, Options{Rounds: 4}); err == nil {
		t.Error("inequivalent wide networks accepted")
	}
}

func TestCandidateErrors(t *testing.T) {
	a := net(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("a"); err != nil {
			return err
		}
		if _, err := nw.AddNode("f", []string{"a"}, logic.MustParse("!a")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	// Candidate with a foreign source name.
	b := net(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("zz"); err != nil {
			return err
		}
		if _, err := nw.AddNode("f", []string{"zz"}, logic.MustParse("!zz")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	if err := Networks(a, b, Options{}); err == nil {
		t.Error("foreign source accepted")
	}
	// Candidate with a foreign output name.
	c := net(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("a"); err != nil {
			return err
		}
		if _, err := nw.AddNode("g", []string{"a"}, logic.MustParse("!a")); err != nil {
			return err
		}
		return nw.MarkOutput("g")
	})
	if err := Networks(a, c, Options{}); err == nil {
		t.Error("foreign output accepted")
	}
}

func TestMappedChecksNetlist(t *testing.T) {
	lib := libgen.Lib2()
	orig := net(t, func(nw *network.Network) error {
		for _, v := range []string{"a", "b"} {
			if _, err := nw.AddInput(v); err != nil {
				return err
			}
		}
		if _, err := nw.AddNode("f", []string{"a", "b"}, logic.MustParse("a*b")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	b := mapping.NewBuilder("m")
	for _, v := range []string{"a", "b"} {
		if err := b.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	n1 := b.FreshNet()
	b.AddCell(lib.Gate("nand2"), []string{"a", "b"}, n1)
	b.AddCell(lib.Gate("inv"), []string{n1}, "f")
	b.MarkOutput("f", "f")
	nl, err := b.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := Mapped(orig, nl, Options{}); err != nil {
		t.Errorf("correct mapping rejected: %v", err)
	}
	// A wrong mapping (nor2 instead of nand2) must be caught.
	b2 := mapping.NewBuilder("m2")
	for _, v := range []string{"a", "b"} {
		if err := b2.AddInput(v); err != nil {
			t.Fatal(err)
		}
	}
	n2 := b2.FreshNet()
	b2.AddCell(lib.Gate("nor2"), []string{"a", "b"}, n2)
	b2.AddCell(lib.Gate("inv"), []string{n2}, "f")
	b2.MarkOutput("f", "f")
	nl2, err := b2.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := Mapped(orig, nl2, Options{}); err == nil {
		t.Error("wrong mapping accepted")
	}
}

func TestLatchBoundaries(t *testing.T) {
	// The mapped netlist of a sequential circuit exposes latch inputs
	// as ports; Mapped must compare them against the original nodes.
	orig := net(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("d"); err != nil {
			return err
		}
		if _, err := nw.AddNode("n", []string{"d"}, logic.MustParse("!d")); err != nil {
			return err
		}
		if _, err := nw.AddLatch("n", "q", false); err != nil {
			return err
		}
		if _, err := nw.AddNode("f", []string{"q"}, logic.MustParse("!q")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	lib := libgen.Lib2()
	b := mapping.NewBuilder("m")
	if err := b.AddInput("d"); err != nil {
		t.Fatal(err)
	}
	if err := b.AddInput("q"); err != nil {
		t.Fatal(err)
	}
	b.AddCell(lib.Gate("inv"), []string{"d"}, "n")
	b.AddCell(lib.Gate("inv"), []string{"q"}, "f")
	b.MarkOutput("f", "f")
	b.MarkOutput("n", "n")
	nl, err := b.Netlist()
	if err != nil {
		t.Fatal(err)
	}
	if err := Mapped(orig, nl, Options{}); err != nil {
		t.Errorf("sequential boundary mapping rejected: %v", err)
	}
}
