package verify

import (
	"fmt"
	"math/rand"

	"dagcover/internal/network"
)

// SeqOptions tunes sequential equivalence checking.
type SeqOptions struct {
	// Cycles is the number of clock cycles to simulate (default 64).
	Cycles int
	// MaxShift bounds the input/output latency difference tolerated
	// between the two circuits (Leiserson-Saxe retiming may shift
	// interface latency through host-edge registers). Default 0:
	// strict cycle alignment.
	MaxShift int
	// Seed makes the random input streams reproducible.
	Seed int64
}

func (o *SeqOptions) defaults() {
	if o.Cycles == 0 {
		o.Cycles = 64
	}
}

// Sequential clocks both circuits from their initial states with the
// same random input streams and compares output streams cycle by
// cycle. With MaxShift > 0, a single global shift within the bound
// may align the streams (retimed circuits); the initial max-latch
// transient is excluded from comparison.
func Sequential(a, b *network.Network, opt SeqOptions) error {
	opt.defaults()
	if len(a.Inputs()) != len(b.Inputs()) {
		return fmt.Errorf("verify: input counts differ: %d vs %d", len(a.Inputs()), len(b.Inputs()))
	}
	for _, in := range b.Inputs() {
		if n := a.Node(in.Name); n == nil || !n.IsInput {
			return fmt.Errorf("verify: candidate input %q unknown to reference", in.Name)
		}
	}
	if len(a.Outputs()) != len(b.Outputs()) {
		return fmt.Errorf("verify: output counts differ: %d vs %d", len(a.Outputs()), len(b.Outputs()))
	}
	outNames := make([]string, len(a.Outputs()))
	for i, o := range a.Outputs() {
		outNames[i] = o.Name
		if b.Node(o.Name) == nil {
			return fmt.Errorf("verify: reference output %q missing from candidate", o.Name)
		}
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	cycles := opt.Cycles
	streamA, err := clock(a, rng, cycles, opt.Seed)
	if err != nil {
		return fmt.Errorf("verify: reference: %v", err)
	}
	streamB, err := clock(b, rng, cycles, opt.Seed)
	if err != nil {
		return fmt.Errorf("verify: candidate: %v", err)
	}
	transient := len(a.Latches())
	if l := len(b.Latches()); l > transient {
		transient = l
	}
	transient += opt.MaxShift
	for shift := -opt.MaxShift; shift <= opt.MaxShift; shift++ {
		if streamsAgree(streamA, streamB, outNames, transient, shift) {
			return nil
		}
	}
	return fmt.Errorf("verify: sequential behaviours differ within shift ±%d (after %d-cycle transient, %d cycles compared)",
		opt.MaxShift, transient, cycles)
}

// clock simulates the circuit for the given cycles with a random
// input stream derived deterministically from seed (the same stream
// for both circuits since inputs are keyed by name and seed).
func clock(nw *network.Network, _ *rand.Rand, cycles int, seed int64) ([]map[string]bool, error) {
	sim, err := network.NewSimulator(nw)
	if err != nil {
		return nil, err
	}
	state := map[string]uint64{}
	for _, l := range nw.Latches() {
		if l.Init {
			state[l.Output.Name] = 1
		} else {
			state[l.Output.Name] = 0
		}
	}
	var out []map[string]bool
	for c := 0; c < cycles; c++ {
		in := map[string]uint64{}
		for _, pi := range nw.Inputs() {
			in[pi.Name] = uint64(inputBit(seed, pi.Name, c))
		}
		for k, v := range state {
			in[k] = v
		}
		vals, err := sim.Run(in)
		if err != nil {
			return nil, err
		}
		row := map[string]bool{}
		for _, o := range nw.Outputs() {
			row[o.Name] = vals[o.Name]&1 == 1
		}
		out = append(out, row)
		for _, l := range nw.Latches() {
			state[l.Output.Name] = vals[l.Input.Name] & 1
		}
	}
	return out, nil
}

// inputBit derives a deterministic pseudo-random bit per (seed, input
// name, cycle) so both circuits see identical streams regardless of
// internal naming or iteration order.
func inputBit(seed int64, name string, cycle int) int {
	h := uint64(seed) * 0x9E3779B97F4A7C15
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 0x100000001B3
	}
	h ^= uint64(cycle) * 0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return int(h & 1)
}

// streamsAgree compares the two output streams under the given shift,
// ignoring the transient prefix.
func streamsAgree(a, b []map[string]bool, outs []string, transient, shift int) bool {
	for c := transient; c < len(a); c++ {
		d := c + shift
		if d < 0 || d >= len(b) {
			continue
		}
		for _, name := range outs {
			if a[c][name] != b[d][name] {
				return false
			}
		}
	}
	return true
}
