// Package verify checks functional equivalence between circuits by
// 64-way bit-parallel simulation: exhaustively for small input counts
// and with random vectors otherwise. Every mapped netlist produced in
// this repository's tests and tools is validated against its source
// network with these routines.
package verify

import (
	"fmt"
	"math/rand"

	"dagcover/internal/mapping"
	"dagcover/internal/network"
)

// ExhaustiveLimit is the largest input count verified exhaustively
// (2^14 rows = 256 simulation batches).
const ExhaustiveLimit = 14

// Options tunes the equivalence check.
type Options struct {
	// Rounds is the number of random 64-vector batches when the check
	// is not exhaustive (default 64).
	Rounds int
	// Seed makes random vectors reproducible.
	Seed int64
}

func (o *Options) defaults() {
	if o.Rounds == 0 {
		o.Rounds = 64
	}
}

// Networks verifies that every primary output of b computes the same
// function as the like-named node of a, over the sources of a. The
// source sets must agree.
func Networks(a, b *network.Network, opt Options) error {
	opt.defaults()
	simA, err := network.NewSimulator(a)
	if err != nil {
		return fmt.Errorf("verify: reference: %v", err)
	}
	simB, err := network.NewSimulator(b)
	if err != nil {
		return fmt.Errorf("verify: candidate: %v", err)
	}
	sources, err := sourceNames(a)
	if err != nil {
		return err
	}
	bSources, err := sourceNames(b)
	if err != nil {
		return err
	}
	for _, s := range bSources {
		if a.Node(s) == nil {
			return fmt.Errorf("verify: candidate source %q unknown to reference", s)
		}
	}
	for _, o := range b.Outputs() {
		if a.Node(o.Name) == nil {
			return fmt.Errorf("verify: candidate output %q unknown to reference", o.Name)
		}
	}

	check := func(in map[string]uint64) error {
		va, err := simA.Run(in)
		if err != nil {
			return fmt.Errorf("verify: reference: %v", err)
		}
		inB := map[string]uint64{}
		for _, s := range bSources {
			inB[s] = va[s]
		}
		vb, err := simB.Run(inB)
		if err != nil {
			return fmt.Errorf("verify: candidate: %v", err)
		}
		for _, o := range b.Outputs() {
			if va[o.Name] != vb[o.Name] {
				bit := firstDiff(va[o.Name], vb[o.Name])
				return fmt.Errorf("verify: output %q differs (vector bit %d): reference %x, candidate %x",
					o.Name, bit, va[o.Name], vb[o.Name])
			}
		}
		return nil
	}

	if len(sources) <= ExhaustiveLimit {
		return exhaustive(sources, check)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	for round := 0; round < opt.Rounds; round++ {
		in := make(map[string]uint64, len(sources))
		for _, s := range sources {
			in[s] = rng.Uint64()
		}
		if err := check(in); err != nil {
			return fmt.Errorf("%v (random round %d, seed %d)", err, round, opt.Seed)
		}
	}
	return nil
}

// Mapped verifies a mapped netlist against the original network. Each
// netlist output port (primary output or latch input) must match the
// like-named node of the original.
func Mapped(orig *network.Network, nl *mapping.Netlist, opt Options) error {
	if err := nl.Check(); err != nil {
		return fmt.Errorf("verify: %v", err)
	}
	cand, err := nl.ToNetwork()
	if err != nil {
		return fmt.Errorf("verify: %v", err)
	}
	return Networks(orig, cand, opt)
}

// sourceNames returns the free inputs of a network: primary inputs and
// latch outputs.
func sourceNames(nw *network.Network) ([]string, error) {
	var out []string
	topo, err := nw.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range topo {
		if n.Func == nil {
			out = append(out, n.Name)
		}
	}
	return out, nil
}

// exhaustive enumerates every assignment of the sources in 64-row
// batches.
func exhaustive(sources []string, check func(map[string]uint64) error) error {
	rows := 1 << len(sources)
	words := (rows + 63) / 64
	for w := 0; w < words; w++ {
		base := w * 64
		in := make(map[string]uint64, len(sources))
		for i, s := range sources {
			in[s] = inputPattern(i, base)
		}
		if err := check(in); err != nil {
			return fmt.Errorf("%v (exhaustive batch %d)", err, w)
		}
	}
	return nil
}

// inputPattern gives the canonical truth-table column of variable i
// restricted to the 64 rows starting at base.
func inputPattern(i, base int) uint64 {
	if i >= 6 {
		if base&(1<<i) != 0 {
			return ^uint64(0)
		}
		return 0
	}
	masks := [6]uint64{
		0xAAAAAAAAAAAAAAAA,
		0xCCCCCCCCCCCCCCCC,
		0xF0F0F0F0F0F0F0F0,
		0xFF00FF00FF00FF00,
		0xFFFF0000FFFF0000,
		0xFFFFFFFF00000000,
	}
	return masks[i]
}

func firstDiff(a, b uint64) int {
	d := a ^ b
	for i := 0; i < 64; i++ {
		if d>>uint(i)&1 == 1 {
			return i
		}
	}
	return -1
}
