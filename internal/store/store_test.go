package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestKeyOfPartitioning(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf must length-prefix parts: (ab,c) and (a,bc) collided")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf not deterministic")
	}
	if len(KeyOf()) != 64 {
		t.Fatalf("key is not a hex sha256: %q", KeyOf())
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestGetOrCreateRoundTrip(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := KeyOf("test", "v1")
	gens := 0
	gen := func() ([]byte, map[string]string, error) {
		gens++
		return []byte("payload-bytes"), map[string]string{"note": "meta survives"}, nil
	}

	e, err := s.GetOrCreate("genlib", key, gen)
	if err != nil {
		t.Fatal(err)
	}
	if e.Hit || string(e.Data) != "payload-bytes" || gens != 1 {
		t.Fatalf("first call: hit=%v data=%q gens=%d", e.Hit, e.Data, gens)
	}
	e2, err := s.GetOrCreate("genlib", key, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !e2.Hit || string(e2.Data) != "payload-bytes" || gens != 1 {
		t.Fatalf("second call: hit=%v data=%q gens=%d", e2.Hit, e2.Data, gens)
	}
	if e2.SHA != e.SHA || e2.Meta["note"] != "meta survives" {
		t.Fatalf("identity/meta did not round-trip: %+v vs %+v", e2, e)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Writes != 1 || st.Objects != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Quarantined != 0 || st.WriteErrors != 0 {
		t.Fatalf("unexpected failures in stats: %+v", st)
	}

	// A second Store on the same directory (another "process") hits too.
	s2 := mustOpen(t, s.Dir())
	e3, err := s2.GetOrCreate("genlib", key, gen)
	if err != nil {
		t.Fatal(err)
	}
	if !e3.Hit || gens != 1 || e3.SHA != e.SHA {
		t.Fatalf("cross-instance: hit=%v gens=%d", e3.Hit, gens)
	}
}

func TestDistinctKindsDoNotAlias(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := KeyOf("same")
	a, _ := s.GetOrCreate("kind-a", key, func() ([]byte, map[string]string, error) {
		return []byte("aaa"), nil, nil
	})
	b, _ := s.GetOrCreate("kind-b", key, func() ([]byte, map[string]string, error) {
		return []byte("bbb"), nil, nil
	})
	if a.Hit || b.Hit || string(b.Data) != "bbb" {
		t.Fatalf("kinds aliased: %+v %+v", a, b)
	}
}

// objectFile finds the single object file on disk.
func objectFile(t *testing.T, s *Store) string {
	t.Helper()
	objs := s.walkObjects()
	if len(objs) != 1 {
		t.Fatalf("want exactly 1 object, have %d", len(objs))
	}
	return objs[0].path
}

// corrupt writes a store object, mangles it with mangle, and asserts
// a fresh Store quarantines the bad bytes and regenerates.
func corrupt(t *testing.T, mangle func(path string, raw []byte)) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	key := KeyOf("corruption")
	payload := []byte("the artifact payload that must never be silently wrong")
	gen := func() ([]byte, map[string]string, error) { return payload, nil, nil }
	if _, err := s.GetOrCreate("genlib", key, gen); err != nil {
		t.Fatal(err)
	}
	path := objectFile(t, s)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mangle(path, raw)

	// A fresh instance (fresh process) must detect, quarantine, regen.
	s2 := mustOpen(t, dir)
	e, err := s2.GetOrCreate("genlib", key, gen)
	if err != nil {
		t.Fatal(err)
	}
	if e.Hit {
		t.Fatal("corrupt object served as a hit")
	}
	if !bytes.Equal(e.Data, payload) {
		t.Fatalf("regenerated data wrong: %q", e.Data)
	}
	st := s2.Stats()
	if st.Quarantined == 0 {
		t.Fatalf("corruption not quarantined: %+v", st)
	}
	qents, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil || len(qents) == 0 {
		t.Fatalf("quarantine dir empty (err=%v)", err)
	}
	// The regenerated object verifies on the next read.
	e2, err := s2.GetOrCreate("genlib", key, gen)
	if err != nil || !e2.Hit || !bytes.Equal(e2.Data, payload) {
		t.Fatalf("regenerated object did not round-trip: hit=%v err=%v", e2.Hit, err)
	}
}

func TestCorruptTruncated(t *testing.T) {
	corrupt(t, func(path string, raw []byte) {
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptBitFlip(t *testing.T) {
	corrupt(t, func(path string, raw []byte) {
		raw[len(raw)-3] ^= 0x40 // flip a payload bit; header sha now disagrees
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptHeaderGarbage(t *testing.T) {
	corrupt(t, func(path string, raw []byte) {
		if err := os.WriteFile(path, []byte("not a store object at all"), 0o644); err != nil {
			t.Fatal(err)
		}
	})
}

func TestCorruptWrongName(t *testing.T) {
	// A valid object renamed under another key's name must not be
	// served for that key (the header pins the key).
	dir := t.TempDir()
	s := mustOpen(t, dir)
	keyA, keyB := KeyOf("a"), KeyOf("b")
	if _, err := s.GetOrCreate("genlib", keyA, func() ([]byte, map[string]string, error) {
		return []byte("A"), nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	src := s.objectPath("genlib", keyA)
	dst := s.objectPath("genlib", keyB)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, ok := mustOpen(t, dir).Get("genlib", keyB); ok {
		t.Fatal("object with mismatched header key was served")
	}
}

func TestConcurrentSingleFlight(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := KeyOf("flight")
	var gens atomic.Int32
	gen := func() ([]byte, map[string]string, error) {
		gens.Add(1)
		time.Sleep(20 * time.Millisecond) // widen the race window
		return []byte("once"), nil, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e, err := s.GetOrCreate("genlib", key, gen)
			if err != nil || string(e.Data) != "once" {
				t.Errorf("GetOrCreate: %v %q", err, e.Data)
			}
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times, want 1", n)
	}
}

func TestCrossInstanceSingleFlight(t *testing.T) {
	// Two Store instances on one directory stand in for two processes:
	// the advisory file lock plus the post-lock re-check must keep
	// generation to one run even when both race.
	dir := t.TempDir()
	key := KeyOf("xproc")
	var gens atomic.Int32
	gen := func() ([]byte, map[string]string, error) {
		gens.Add(1)
		time.Sleep(20 * time.Millisecond)
		return []byte("once"), nil, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		st := mustOpen(t, dir)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if e, err := st.GetOrCreate("genlib", key, gen); err != nil || string(e.Data) != "once" {
				t.Errorf("GetOrCreate: %v %q", err, e.Data)
			}
		}()
	}
	wg.Wait()
	if n := gens.Load(); n != 1 {
		t.Fatalf("generator ran %d times across instances, want 1", n)
	}
}

func TestGenerationErrorNotCached(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	key := KeyOf("flaky")
	calls := 0
	_, err := s.GetOrCreate("genlib", key, func() ([]byte, map[string]string, error) {
		calls++
		return nil, nil, fmt.Errorf("transient")
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	e, err := s.GetOrCreate("genlib", key, func() ([]byte, map[string]string, error) {
		calls++
		return []byte("ok"), nil, nil
	})
	if err != nil || e.Hit || string(e.Data) != "ok" || calls != 2 {
		t.Fatalf("retry after failure: err=%v hit=%v calls=%d", err, e.Hit, calls)
	}
}

func TestLRUGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxBytes: 3 * 1100}) // room for ~3 1KB objects
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 1024)
	keys := make([]Key, 6)
	for i := range keys {
		keys[i] = KeyOf("gc", fmt.Sprint(i))
		if _, err := s.GetOrCreate("genlib", keys[i], func() ([]byte, map[string]string, error) {
			return payload, nil, nil
		}); err != nil {
			t.Fatal(err)
		}
		// Backdate older objects so LRU order is unambiguous regardless
		// of filesystem timestamp granularity.
		old := time.Now().Add(-time.Duration(len(keys)-i) * time.Hour)
		_ = os.Chtimes(s.objectPath("genlib", keys[i]), old, old)
	}
	s.GC()
	st := s.Stats()
	if st.Bytes > 3*1100 {
		t.Fatalf("GC left %d bytes over the %d budget", st.Bytes, 3*1100)
	}
	if st.Evictions == 0 {
		t.Fatalf("no evictions recorded: %+v", st)
	}
	// The most recently written objects survive; the oldest are gone.
	if _, ok := s.Get("genlib", keys[len(keys)-1]); !ok {
		t.Fatal("newest object evicted")
	}
	if _, ok := s.Get("genlib", keys[0]); ok {
		t.Fatal("oldest object survived a GC that evicted")
	}
}

func TestNoTempLeftovers(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	for i := 0; i < 4; i++ {
		if _, err := s.GetOrCreate("genlib", KeyOf("t", fmt.Sprint(i)), func() ([]byte, map[string]string, error) {
			return []byte("data"), nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(filepath.Join(s.Dir(), "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("tmp dir holds %d leftovers", len(ents))
	}
}

func TestPutThenGet(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	key := KeyOf("put", "v1")
	data := []byte("cached result payload")
	if err := s.Put("mapres1", key, data, 12.5, map[string]string{"circuit": "c17"}); err != nil {
		t.Fatal(err)
	}
	e, ok := s.Get("mapres1", key)
	if !ok {
		t.Fatal("Put object not found by Get")
	}
	if !bytes.Equal(e.Data, data) {
		t.Errorf("payload mismatch: %q", e.Data)
	}
	if e.GenMillis != 12.5 {
		t.Errorf("gen millis %v, want 12.5", e.GenMillis)
	}
	if e.Meta["circuit"] != "c17" {
		t.Errorf("meta lost: %v", e.Meta)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 {
		t.Errorf("writes=%d hits=%d, want 1/1", st.Writes, st.Hits)
	}
	// A second store instance on the same directory sees the object —
	// the warm-restart property the result cache relies on.
	s2 := mustOpen(t, dir)
	if e2, ok := s2.Get("mapres1", key); !ok || !bytes.Equal(e2.Data, data) || e2.SHA != e.SHA {
		t.Error("restarted store does not serve the Put object")
	}
}
