//go:build !unix

package store

// lockFile on platforms without advisory file locks degrades to no
// cross-process exclusion: GetOrCreate still re-checks the disk
// before generating, so the worst case is duplicated generation work,
// never corruption (publication stays atomic via rename).
func lockFile(path string) (func(), error) {
	return func() {}, nil
}
