//go:build unix

package store

import (
	"os"
	"syscall"
)

// lockFile takes a blocking exclusive advisory lock on path (created
// if absent) and returns the unlock function. Advisory flock is
// process-scoped, which is exactly the granularity the store needs:
// in-process callers are already serialized by the flight mutex.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		f.Close()
	}, nil
}
