package genlib

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"dagcover/internal/logic"
)

// wideGate builds an n-input NAND with per-pin delays 1.0 + i/10, the
// shape the supergate emitter produces (many pins, distinct delays).
func wideGate(t *testing.T, n int) *Gate {
	t.Helper()
	pins := make([]Pin, n)
	terms := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("p%02d", i)
		d := 1.0 + float64(i)/10
		pins[i] = Pin{Name: name, Phase: PhaseInv, InputLoad: 1, MaxLoad: 999,
			RiseBlock: d, FallBlock: d}
		terms[i] = name
	}
	g := &Gate{
		Name:   fmt.Sprintf("wnand%d", n),
		Area:   float64(n),
		Output: "O",
		Expr:   logic.MustParse("!(" + strings.Join(terms, "*") + ")"),
		Pins:   pins,
	}
	return g
}

// TestWideGateConstruction covers gates beyond 10 input pins, which
// the supergate emitter depends on: pin order must be preserved, pin
// lookup must resolve every formal, and per-pin intrinsic delays must
// come back in the order the pins were declared.
func TestWideGateConstruction(t *testing.T) {
	for _, n := range []int{11, 13, 16} {
		g := wideGate(t, n)
		lib := NewLibrary("wide")
		if err := lib.Add(g); err != nil {
			t.Fatalf("Add(%d pins): %v", n, err)
		}
		if g.NumInputs() != n {
			t.Fatalf("NumInputs = %d, want %d", g.NumInputs(), n)
		}
		formals := g.Formals()
		if len(formals) != n {
			t.Fatalf("Formals = %d names, want %d", len(formals), n)
		}
		for i, name := range formals {
			if want := fmt.Sprintf("p%02d", i); name != want {
				t.Errorf("formal %d = %q, want %q (pin order not preserved)", i, name, want)
			}
			if got := g.PinIndex(name); got != i {
				t.Errorf("PinIndex(%q) = %d, want %d", name, got, i)
			}
		}
		// Pin-delay ordering: pin i's intrinsic is 1.0 + i/10, strictly
		// increasing, and MaxIntrinsic sees the last pin.
		dm := IntrinsicDelay{}
		for i := 0; i < n; i++ {
			want := 1.0 + float64(i)/10
			if got := dm.PinDelay(g, i); got != want {
				t.Errorf("PinDelay(%d) = %v, want %v", i, got, want)
			}
			if i > 0 && dm.PinDelay(g, i) <= dm.PinDelay(g, i-1) {
				t.Errorf("pin delays not increasing at %d", i)
			}
		}
		if got, want := g.MaxIntrinsic(), 1.0+float64(n-1)/10; got != want {
			t.Errorf("MaxIntrinsic = %v, want %v", got, want)
		}
	}
}

// TestWideGateRoundTrip writes a library with 11- and 16-input gates
// as genlib text and parses it back, checking that gate identity,
// areas, pin order, phases, and delays all survive.
func TestWideGateRoundTrip(t *testing.T) {
	lib := NewLibrary("wide")
	for _, n := range []int{11, 16} {
		if err := lib.Add(wideGate(t, n)); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatalf("Write: %v", err)
	}
	back, err := Parse("wide", strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("Parse of written genlib: %v\n%s", err, buf.String())
	}
	if len(back.Gates) != len(lib.Gates) {
		t.Fatalf("round trip lost gates: %d -> %d", len(lib.Gates), len(back.Gates))
	}
	for _, g := range lib.Gates {
		h := back.Gate(g.Name)
		if h == nil {
			t.Fatalf("gate %q missing after round trip", g.Name)
		}
		if h.Area != g.Area {
			t.Errorf("%s: area %v -> %v", g.Name, g.Area, h.Area)
		}
		if len(h.Pins) != len(g.Pins) {
			t.Fatalf("%s: pins %d -> %d", g.Name, len(g.Pins), len(h.Pins))
		}
		for i := range g.Pins {
			if h.Pins[i] != g.Pins[i] {
				t.Errorf("%s: pin %d %+v -> %+v", g.Name, i, g.Pins[i], h.Pins[i])
			}
		}
		eq, err := logic.Equivalent(g.Expr, h.Expr)
		if err != nil {
			t.Fatalf("%s: equivalence check: %v", g.Name, err)
		}
		if !eq {
			t.Errorf("%s: function changed across round trip", g.Name)
		}
		if g.FunctionKey() != h.FunctionKey() {
			t.Errorf("%s: FunctionKey changed across round trip", g.Name)
		}
	}
}
