// Package genlib models standard-cell gate libraries in the Berkeley
// genlib format used by SIS/MIS technology mappers:
//
//	GATE <name> <area> <output>=<expression>;
//	PIN <pin|*> <phase> <input-load> <max-load>
//	    <rise-block> <rise-fanout> <fall-block> <fall-fanout>
//
// Following the paper (footnote 4), the mapping delay model is
// load-independent: only the block (intrinsic) delays are used and the
// fanout (load) coefficients are ignored.
package genlib

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"dagcover/internal/logic"
)

// Phase is a pin's polarity relationship to the gate output.
type Phase int

const (
	// PhaseUnknown means the output is neither monotone increasing
	// nor decreasing in this pin.
	PhaseUnknown Phase = iota
	// PhaseInv means the output falls when the pin rises.
	PhaseInv
	// PhaseNonInv means the output rises when the pin rises.
	PhaseNonInv
)

func (p Phase) String() string {
	switch p {
	case PhaseInv:
		return "INV"
	case PhaseNonInv:
		return "NONINV"
	}
	return "UNKNOWN"
}

// Pin describes one input pin of a gate.
type Pin struct {
	Name       string
	Phase      Phase
	InputLoad  float64
	MaxLoad    float64
	RiseBlock  float64 // intrinsic rise delay
	RiseFanout float64 // load-dependent rise coefficient (unused in mapping)
	FallBlock  float64 // intrinsic fall delay
	FallFanout float64 // load-dependent fall coefficient (unused in mapping)
}

// Intrinsic returns the load-independent pin-to-output delay: the
// worse of the rise and fall block delays.
func (p Pin) Intrinsic() float64 {
	if p.RiseBlock > p.FallBlock {
		return p.RiseBlock
	}
	return p.FallBlock
}

// Gate is a single-output library cell.
type Gate struct {
	Name   string
	Area   float64
	Output string
	Expr   *logic.Expr
	Pins   []Pin
	pinIdx map[string]int
}

// NumInputs returns the number of input pins.
func (g *Gate) NumInputs() int { return len(g.Pins) }

// PinIndex returns the index of the named pin, or -1.
func (g *Gate) PinIndex(name string) int {
	if i, ok := g.pinIdx[name]; ok {
		return i
	}
	return -1
}

// Formals returns the ordered input pin names.
func (g *Gate) Formals() []string {
	out := make([]string, len(g.Pins))
	for i, p := range g.Pins {
		out[i] = p.Name
	}
	return out
}

// MaxIntrinsic returns the largest intrinsic delay over all pins (the
// gate delay under the unit-ish worst-pin view); 0 for constant gates.
func (g *Gate) MaxIntrinsic() float64 {
	max := 0.0
	for _, p := range g.Pins {
		if d := p.Intrinsic(); d > max {
			max = d
		}
	}
	return max
}

// Library is an ordered collection of gates.
type Library struct {
	Name   string
	Gates  []*Gate
	byName map[string]*Gate
}

// NewLibrary returns an empty library.
func NewLibrary(name string) *Library {
	return &Library{Name: name, byName: map[string]*Gate{}}
}

// Add validates and inserts a gate.
func (l *Library) Add(g *Gate) error {
	if g.Name == "" {
		return fmt.Errorf("genlib: gate with empty name")
	}
	if _, dup := l.byName[g.Name]; dup {
		return fmt.Errorf("genlib: duplicate gate %q", g.Name)
	}
	if g.Expr == nil {
		return fmt.Errorf("genlib: gate %q has no function", g.Name)
	}
	g.pinIdx = map[string]int{}
	for i, p := range g.Pins {
		if _, dup := g.pinIdx[p.Name]; dup {
			return fmt.Errorf("genlib: gate %q has duplicate pin %q", g.Name, p.Name)
		}
		g.pinIdx[p.Name] = i
	}
	for _, v := range g.Expr.Vars() {
		if _, ok := g.pinIdx[v]; !ok {
			return fmt.Errorf("genlib: gate %q uses input %q with no PIN record", g.Name, v)
		}
	}
	l.Gates = append(l.Gates, g)
	l.byName[g.Name] = g
	return nil
}

// Gate returns the named gate, or nil.
func (l *Library) Gate(name string) *Gate { return l.byName[name] }

// GateFunc implements the blif.GateResolver interface.
func (l *Library) GateFunc(name string) (*logic.Expr, []string, bool) {
	g := l.byName[name]
	if g == nil {
		return nil, nil, false
	}
	return g.Expr, g.Formals(), true
}

// Inverter returns the minimum-area inverter gate, or nil if the
// library has none.
func (l *Library) Inverter() *Gate { return l.cheapest("!a") }

// Nand2 returns the minimum-area 2-input NAND gate, or nil.
func (l *Library) Nand2() *Gate { return l.cheapest("!(a*b)") }

// Buffer returns the minimum-area buffer (identity) gate, or nil.
func (l *Library) Buffer() *Gate { return l.cheapest("a") }

func (l *Library) cheapest(canon string) *Gate {
	want := logic.MustParse(canon)
	var best *Gate
	for _, g := range l.Gates {
		if g.NumInputs() != len(want.Vars()) {
			continue
		}
		// Rename the gate expression onto a, b, ... in pin order.
		ren := map[string]string{}
		for i, p := range g.Pins {
			ren[p.Name] = string(rune('a' + i))
		}
		eq, err := logic.Equivalent(g.Expr.Rename(ren), want)
		if err != nil || !eq {
			continue
		}
		if best == nil || g.Area < best.Area {
			best = g
		}
	}
	return best
}

// Stats summarizes the library.
type Stats struct {
	Gates     int
	MaxInputs int
	MinArea   float64
	MaxArea   float64
}

// Stats computes summary statistics.
func (l *Library) Stats() Stats {
	s := Stats{Gates: len(l.Gates)}
	for i, g := range l.Gates {
		if g.NumInputs() > s.MaxInputs {
			s.MaxInputs = g.NumInputs()
		}
		if i == 0 || g.Area < s.MinArea {
			s.MinArea = g.Area
		}
		if g.Area > s.MaxArea {
			s.MaxArea = g.Area
		}
	}
	return s
}

// Parse reads a genlib library from r.
func Parse(name string, r io.Reader) (*Library, error) {
	lib := NewLibrary(name)
	toks, err := tokenize(r)
	if err != nil {
		return nil, err
	}
	i := 0
	for i < len(toks) {
		switch strings.ToUpper(toks[i]) {
		case "GATE":
			g, next, err := parseGate(toks, i)
			if err != nil {
				return nil, err
			}
			if err := lib.Add(g); err != nil {
				return nil, err
			}
			i = next
		case "LATCH":
			// Sequential cells are outside the scope of combinational
			// mapping; skip to the next GATE/LATCH keyword.
			i++
			for i < len(toks) {
				up := strings.ToUpper(toks[i])
				if up == "GATE" || up == "LATCH" {
					break
				}
				i++
			}
		default:
			return nil, fmt.Errorf("genlib: unexpected token %q", toks[i])
		}
	}
	if len(lib.Gates) == 0 {
		return nil, fmt.Errorf("genlib: library %q contains no gates", name)
	}
	return lib, nil
}

// ParseString parses genlib text.
func ParseString(name, s string) (*Library, error) {
	return Parse(name, strings.NewReader(s))
}

// parseGate parses one GATE record starting at toks[i] == "GATE".
func parseGate(toks []string, i int) (*Gate, int, error) {
	// GATE name area out=expr... ; PIN ...
	if i+3 >= len(toks) {
		return nil, 0, fmt.Errorf("genlib: truncated GATE record")
	}
	g := &Gate{Name: toks[i+1]}
	area, err := strconv.ParseFloat(toks[i+2], 64)
	if err != nil {
		return nil, 0, fmt.Errorf("genlib: gate %q: bad area %q", g.Name, toks[i+2])
	}
	g.Area = area
	// The function is everything up to the ';' token (tokenizer keeps
	// ';' separate).
	j := i + 3
	var fn strings.Builder
	for j < len(toks) && toks[j] != ";" {
		fn.WriteString(toks[j])
		fn.WriteByte(' ')
		j++
	}
	if j == len(toks) {
		return nil, 0, fmt.Errorf("genlib: gate %q: missing ';'", g.Name)
	}
	j++ // skip ';'
	eq := strings.IndexByte(fn.String(), '=')
	if eq < 0 {
		return nil, 0, fmt.Errorf("genlib: gate %q: function %q lacks '='", g.Name, fn.String())
	}
	g.Output = strings.TrimSpace(fn.String()[:eq])
	expr, err := logic.Parse(strings.TrimSpace(fn.String()[eq+1:]))
	if err != nil {
		return nil, 0, fmt.Errorf("genlib: gate %q: %v", g.Name, err)
	}
	g.Expr = expr

	// PIN records.
	var star *Pin
	var pins []Pin
	for j < len(toks) && strings.ToUpper(toks[j]) == "PIN" {
		if j+8 >= len(toks) {
			return nil, 0, fmt.Errorf("genlib: gate %q: truncated PIN record", g.Name)
		}
		p := Pin{Name: toks[j+1]}
		switch strings.ToUpper(toks[j+2]) {
		case "INV":
			p.Phase = PhaseInv
		case "NONINV":
			p.Phase = PhaseNonInv
		case "UNKNOWN":
			p.Phase = PhaseUnknown
		default:
			return nil, 0, fmt.Errorf("genlib: gate %q pin %q: bad phase %q", g.Name, p.Name, toks[j+2])
		}
		nums := make([]float64, 6)
		for k := 0; k < 6; k++ {
			v, err := strconv.ParseFloat(toks[j+3+k], 64)
			if err != nil {
				return nil, 0, fmt.Errorf("genlib: gate %q pin %q: bad number %q", g.Name, p.Name, toks[j+3+k])
			}
			nums[k] = v
		}
		p.InputLoad, p.MaxLoad = nums[0], nums[1]
		p.RiseBlock, p.RiseFanout = nums[2], nums[3]
		p.FallBlock, p.FallFanout = nums[4], nums[5]
		if p.Name == "*" {
			pp := p
			star = &pp
		} else {
			pins = append(pins, p)
		}
		j += 9
	}
	vars := expr.Vars()
	if star != nil {
		if len(pins) > 0 {
			return nil, 0, fmt.Errorf("genlib: gate %q mixes PIN * with named pins", g.Name)
		}
		for _, v := range vars {
			p := *star
			p.Name = v
			pins = append(pins, p)
		}
	}
	if len(pins) == 0 && len(vars) > 0 {
		return nil, 0, fmt.Errorf("genlib: gate %q has inputs but no PIN records", g.Name)
	}
	g.Pins = pins
	return g, j, nil
}

// tokenize splits genlib text into tokens; ';' and '#' handled.
func tokenize(r io.Reader) ([]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var toks []string
	for sc.Scan() {
		lineText := sc.Text()
		if idx := strings.IndexByte(lineText, '#'); idx >= 0 {
			lineText = lineText[:idx]
		}
		// Keep ';' as its own token.
		lineText = strings.ReplaceAll(lineText, ";", " ; ")
		toks = append(toks, strings.Fields(lineText)...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("genlib: %v", err)
	}
	return toks, nil
}

// Write renders the library as genlib text.
func Write(w io.Writer, l *Library) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# library %s: %d gates\n", l.Name, len(l.Gates))
	for _, g := range l.Gates {
		fmt.Fprintf(bw, "GATE %s %g %s=%s;\n", g.Name, g.Area, g.Output, g.Expr.String())
		for _, p := range g.Pins {
			fmt.Fprintf(bw, "  PIN %s %s %g %g %g %g %g %g\n",
				p.Name, p.Phase, p.InputLoad, p.MaxLoad,
				p.RiseBlock, p.RiseFanout, p.FallBlock, p.FallFanout)
		}
	}
	return bw.Flush()
}

// DelayModel maps a (gate, input pin) pair to a pin-to-output delay.
type DelayModel interface {
	// PinDelay returns the delay from input pin to the gate output.
	PinDelay(g *Gate, pin int) float64
	// Name identifies the model in reports.
	Name() string
}

// IntrinsicDelay uses the genlib block delays with the load term
// forced to zero (the paper's experimental model, footnote 4).
type IntrinsicDelay struct{}

// PinDelay implements DelayModel.
func (IntrinsicDelay) PinDelay(g *Gate, pin int) float64 { return g.Pins[pin].Intrinsic() }

// Name implements DelayModel.
func (IntrinsicDelay) Name() string { return "intrinsic" }

// UnitDelay charges one unit per gate regardless of pin; mapped depth
// equals the gate count on the longest path (the model behind the
// integer-valued 44-1/44-3 tables).
type UnitDelay struct{}

// PinDelay implements DelayModel.
func (UnitDelay) PinDelay(*Gate, int) float64 { return 1 }

// Name implements DelayModel.
func (UnitDelay) Name() string { return "unit" }

// SortedGateNames returns all gate names in sorted order.
func (l *Library) SortedGateNames() []string {
	names := make([]string, len(l.Gates))
	for i, g := range l.Gates {
		names[i] = g.Name
	}
	sort.Strings(names)
	return names
}

// FunctionKey returns a canonical rendering of the gate function with
// pins renamed positionally (p0, p1, ...). Gates with equal keys are
// drop-in replacements for one another (same function, same pin
// order) — the basis for discrete gate sizing.
func (g *Gate) FunctionKey() string {
	ren := map[string]string{}
	for i, p := range g.Pins {
		ren[p.Name] = fmt.Sprintf("p%d", i)
	}
	return g.Expr.Rename(ren).String()
}

// VariantGroups partitions the library by FunctionKey: each group
// holds interchangeable drive-strength variants sorted by area.
func VariantGroups(l *Library) map[string][]*Gate {
	groups := map[string][]*Gate{}
	for _, g := range l.Gates {
		key := g.FunctionKey()
		groups[key] = append(groups[key], g)
	}
	for _, gs := range groups {
		sort.Slice(gs, func(i, j int) bool { return gs[i].Area < gs[j].Area })
	}
	return groups
}
