package genlib

import (
	"bytes"
	"strings"
	"testing"

	"dagcover/internal/logic"
)

const sampleLib = `
# a tiny library
GATE inv1 1.0 O=!a;
  PIN a INV 1 999 0.4 0.1 0.4 0.1
GATE nand2 2.0 O=!(a*b);
  PIN * INV 1 999 0.6 0.15 0.6 0.15
GATE aoi21 3.0 O=!(a*b+c);
  PIN a INV 1 999 0.9 0.2 0.8 0.2
  PIN b INV 1 999 0.9 0.2 0.8 0.2
  PIN c INV 1 999 0.7 0.2 0.6 0.2
GATE zero 0.0 O=CONST0;
GATE buf 1.5 O=a;
  PIN a NONINV 1 999 0.5 0.1 0.5 0.1
`

func parseSample(t *testing.T) *Library {
	t.Helper()
	lib, err := ParseString("sample", sampleLib)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestParseLibrary(t *testing.T) {
	lib := parseSample(t)
	if len(lib.Gates) != 5 {
		t.Fatalf("gates = %d, want 5", len(lib.Gates))
	}
	inv := lib.Gate("inv1")
	if inv == nil || inv.Area != 1.0 || inv.NumInputs() != 1 {
		t.Fatalf("inv1 wrong: %+v", inv)
	}
	if inv.Pins[0].Phase != PhaseInv {
		t.Errorf("inv1 phase = %v", inv.Pins[0].Phase)
	}
	if got := inv.Pins[0].Intrinsic(); got != 0.4 {
		t.Errorf("inv1 intrinsic = %v", got)
	}
	nand := lib.Gate("nand2")
	if nand.NumInputs() != 2 {
		t.Fatalf("PIN * expansion failed: %d pins", nand.NumInputs())
	}
	if nand.PinIndex("b") != 1 || nand.PinIndex("zz") != -1 {
		t.Errorf("PinIndex wrong")
	}
	aoi := lib.Gate("aoi21")
	if got := aoi.Pins[aoi.PinIndex("c")].Intrinsic(); got != 0.7 {
		t.Errorf("aoi21 c intrinsic = %v", got)
	}
	if got := aoi.MaxIntrinsic(); got != 0.9 {
		t.Errorf("aoi21 max intrinsic = %v", got)
	}
	zero := lib.Gate("zero")
	if zero.NumInputs() != 0 {
		t.Errorf("constant gate should have no pins")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"GATE g xx O=a; PIN a INV 1 999 1 0 1 0", // bad area
		"GATE g 1.0 O=a*b; PIN a INV 1 999 1 0 1 0", // missing pin b
		"GATE g 1.0 O=!a",                                                                   // missing ;
		"GATE g 1.0 a; PIN a INV 1 999 1 0 1 0",                                             // missing =
		"GATE g 1.0 O=!a; PIN a BAD 1 999 1 0 1 0",                                          // bad phase
		"GATE g 1.0 O=!a; PIN a INV 1 999 1 0 1",                                            // truncated PIN
		"GATE g 1.0 O=!(a*b); PIN * INV 1 999 1 0 1 0 PIN a INV 1 999 1 0 1 0",              // * mixed with named
		"GATE g 1.0 O=!a; PIN a INV 1 999 1 0 1 0 GATE g 1.0 O=!a; PIN a INV 1 999 1 0 1 0", // duplicate
		"FOO bar",
	}
	for _, c := range cases {
		if _, err := ParseString("bad", c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

func TestLatchSkipped(t *testing.T) {
	lib, err := ParseString("l", `
LATCH dff 8.0 Q=D;
  PIN D NONINV 1 999 1 0 1 0
GATE inv 1.0 O=!a;
  PIN a INV 1 999 1 0 1 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(lib.Gates) != 1 || lib.Gate("inv") == nil {
		t.Errorf("latch skipping failed: %d gates", len(lib.Gates))
	}
}

func TestGateFuncResolver(t *testing.T) {
	lib := parseSample(t)
	fn, formals, ok := lib.GateFunc("aoi21")
	if !ok {
		t.Fatal("aoi21 not resolved")
	}
	if len(formals) != 3 {
		t.Fatalf("formals = %v", formals)
	}
	eq, err := logic.Equivalent(fn, logic.MustParse("!(a*b+c)"))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("resolved wrong function")
	}
	if _, _, ok := lib.GateFunc("nope"); ok {
		t.Error("unknown gate resolved")
	}
}

func TestSpecialGateLookup(t *testing.T) {
	lib := parseSample(t)
	if g := lib.Inverter(); g == nil || g.Name != "inv1" {
		t.Errorf("Inverter = %v", g)
	}
	if g := lib.Nand2(); g == nil || g.Name != "nand2" {
		t.Errorf("Nand2 = %v", g)
	}
	if g := lib.Buffer(); g == nil || g.Name != "buf" {
		t.Errorf("Buffer = %v", g)
	}
	// Cheapest wins: add a cheaper inverter.
	lib2, err := ParseString("two-inv", `
GATE invA 2.0 O=!a;
 PIN a INV 1 999 1 0 1 0
GATE invB 0.5 O=!x;
 PIN x INV 1 999 1 0 1 0
`)
	if err != nil {
		t.Fatal(err)
	}
	if g := lib2.Inverter(); g.Name != "invB" {
		t.Errorf("cheapest inverter = %v", g.Name)
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	lib := parseSample(t)
	var buf bytes.Buffer
	if err := Write(&buf, lib); err != nil {
		t.Fatal(err)
	}
	again, err := ParseString("again", buf.String())
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if len(again.Gates) != len(lib.Gates) {
		t.Fatalf("gate count changed: %d -> %d", len(lib.Gates), len(again.Gates))
	}
	for _, g := range lib.Gates {
		h := again.Gate(g.Name)
		if h == nil {
			t.Fatalf("gate %q lost", g.Name)
		}
		if h.Area != g.Area || h.NumInputs() != g.NumInputs() {
			t.Errorf("gate %q changed: %+v vs %+v", g.Name, g, h)
		}
		eq, err := logic.Equivalent(g.Expr, h.Expr)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("gate %q function changed", g.Name)
		}
		for i := range g.Pins {
			if g.Pins[i] != h.Pins[i] {
				t.Errorf("gate %q pin %d changed: %+v vs %+v", g.Name, i, g.Pins[i], h.Pins[i])
			}
		}
	}
}

func TestDelayModels(t *testing.T) {
	lib := parseSample(t)
	aoi := lib.Gate("aoi21")
	var intr IntrinsicDelay
	if got := intr.PinDelay(aoi, 2); got != 0.7 {
		t.Errorf("intrinsic pin delay = %v", got)
	}
	var unit UnitDelay
	if got := unit.PinDelay(aoi, 0); got != 1 {
		t.Errorf("unit pin delay = %v", got)
	}
	if intr.Name() == unit.Name() {
		t.Error("model names must differ")
	}
}

func TestStats(t *testing.T) {
	lib := parseSample(t)
	s := lib.Stats()
	if s.Gates != 5 || s.MaxInputs != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.MinArea != 0.0 || s.MaxArea != 3.0 {
		t.Errorf("area stats = %+v", s)
	}
}

func TestSortedGateNames(t *testing.T) {
	lib := parseSample(t)
	names := lib.SortedGateNames()
	if len(names) != 5 {
		t.Fatalf("names = %v", names)
	}
	if !strings.HasPrefix(names[0], "aoi21") {
		t.Errorf("names not sorted: %v", names)
	}
}
