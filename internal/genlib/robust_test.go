package genlib

import (
	"math/rand"
	"strings"
	"testing"
)

// Random mutations of valid genlib text must never panic the parser;
// accepted parses must produce consistent libraries.
func TestParseMutationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	for trial := 0; trial < 1500; trial++ {
		bs := []byte(sampleLib)
		for m := 0; m < 1+rng.Intn(4); m++ {
			switch rng.Intn(3) {
			case 0:
				bs[rng.Intn(len(bs))] = byte(rng.Intn(128))
			case 1:
				i := rng.Intn(len(bs))
				j := i + rng.Intn(10)
				if j > len(bs) {
					j = len(bs)
				}
				bs = append(bs[:i], bs[j:]...)
				if len(bs) == 0 {
					bs = []byte("G")
				}
			case 2:
				words := strings.Fields(string(bs))
				if len(words) > 1 {
					k := rng.Intn(len(words))
					words = append(words[:k], words[k+1:]...)
					bs = []byte(strings.Join(words, " "))
				}
			}
		}
		in := string(bs)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString panicked:\n%s\npanic: %v", in, r)
				}
			}()
			lib, err := ParseString("fuzz", in)
			if err == nil {
				for _, g := range lib.Gates {
					if g.Expr == nil || g.NumInputs() != len(g.Pins) {
						t.Fatalf("accepted library has inconsistent gate %q", g.Name)
					}
					for _, v := range g.Expr.Vars() {
						if g.PinIndex(v) < 0 {
							t.Fatalf("accepted gate %q misses pin %q", g.Name, v)
						}
					}
				}
			}
		}()
	}
}
