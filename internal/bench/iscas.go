package bench

import (
	"fmt"

	"dagcover/internal/network"
)

// graft copies the combinational network src into b, prefixing every
// node name. Source PIs are connected according to inputMap; PIs
// missing from the map become fresh primary inputs of b. When
// markOutputs is set, src's outputs become outputs of b. The returned
// map gives the new name of every src output.
func (b *builder) graft(src *network.Network, prefix string, inputMap map[string]string, markOutputs bool) map[string]string {
	if len(src.Latches()) != 0 {
		panic("bench: graft supports combinational networks only")
	}
	topo, err := src.TopoSort()
	if err != nil {
		panic(fmt.Sprintf("bench: graft: %v", err))
	}
	rename := map[string]string{}
	for _, n := range topo {
		if n.Func == nil {
			if to, ok := inputMap[n.Name]; ok {
				rename[n.Name] = to
			} else {
				rename[n.Name] = b.in(prefix + n.Name)
			}
			continue
		}
		newName := prefix + n.Name
		var fanins []string
		seen := map[string]bool{}
		faninRename := map[string]string{}
		for _, fi := range n.Fanins {
			to := rename[fi.Name]
			faninRename[fi.Name] = to
			if !seen[to] {
				seen[to] = true
				fanins = append(fanins, to)
			}
		}
		if _, err := b.nw.AddNode(newName, fanins, n.Func.Rename(faninRename)); err != nil {
			panic(fmt.Sprintf("bench: graft: %v", err))
		}
		rename[n.Name] = newName
	}
	outs := map[string]string{}
	for _, o := range src.Outputs() {
		outs[o.Name] = rename[o.Name]
		if markOutputs {
			b.out(rename[o.Name])
		}
	}
	return outs
}

// Circuit names a generated benchmark.
type Circuit struct {
	Name    string
	Network *network.Network
}

// C432 is a stand-in for the 27-channel interrupt controller:
// priority logic over banked requests with parity gating.
func C432() *network.Network {
	b := newBuilder("c432")
	outs := b.graft(PriorityEncoder(27), "pe_", nil, false)
	par := b.graft(ParityTree(9), "pt_", nil, false)
	// Gate each index bit with the parity stream.
	for i, sig := range sortedValues(outs) {
		g := b.node(fmt.Sprintf("po%d", i), fmt.Sprintf("%s^%s", sig, par["par"]), sig, par["par"])
		b.out(g)
	}
	return b.done()
}

// C499 is a stand-in for the 32-bit single-error-correcting circuit.
func C499() *network.Network {
	nw := HammingDecoder(32)
	nw.Name = "c499"
	return nw
}

// C880 is a stand-in for the 8-bit ALU.
func C880() *network.Network {
	nw := ALU(8)
	nw.Name = "c880"
	return nw
}

// C1355 is a stand-in for the 32-bit SEC circuit in its expanded
// NAND form; it computes the same function as C499 (as the real
// C1355 does).
func C1355() *network.Network {
	nw := HammingDecoder(32)
	nw.Name = "c1355"
	return nw
}

// C1908 is a stand-in for the 16-bit SEC/DED circuit: a Hamming
// corrector plus an overall-parity (double-error-detect) output.
func C1908() *network.Network {
	b := newBuilder("c1908")
	dec := b.graft(HammingDecoder(16), "h_", nil, true)
	_ = dec
	// Overall parity over the received codeword for DED.
	p := hammingParityBits(16)
	n := 16 + p
	var terms []string
	for pos := 1; pos <= n; pos++ {
		terms = append(terms, "h_c"+itoa(pos))
	}
	expr := terms[0]
	for _, t := range terms[1:] {
		expr += "^" + t
	}
	b.out(b.node("ded", expr, terms...))
	return b.done()
}

// C2670 is a stand-in for the 12-bit ALU-and-controller: an adder, a
// comparator, priority logic and random control glue.
func C2670() *network.Network {
	b := newBuilder("c2670")
	add := b.graft(CarrySelectAdder(12, 4), "add_", nil, true)
	cmp := b.graft(Comparator(12), "cmp_", nil, false)
	pe := b.graft(PriorityEncoder(16), "pe_", nil, false)
	ctl := b.graft(RandomDAG(24, 220, 2670), "ctl_", nil, false)
	// Cross-couple the section outputs through gating logic.
	i := 0
	for _, lhs := range []map[string]string{cmp, pe, ctl} {
		for _, sig := range sortedValues(lhs) {
			gate := add["cout"]
			b.out(b.node(fmt.Sprintf("po%d", i), fmt.Sprintf("%s^%s", sig, gate), sig, gate))
			i++
		}
	}
	return b.done()
}

// C3540 is a stand-in for the 8-bit ALU with decode/select control.
func C3540() *network.Network {
	b := newBuilder("c3540")
	alu := b.graft(ALU(8), "alu_", nil, true)
	dec := b.graft(Decoder(4), "dec_", nil, false)
	ctl := b.graft(RandomDAG(20, 400, 3540), "ctl_", nil, false)
	i := 0
	decs := sortedValues(dec)
	for idx, sig := range sortedValues(ctl) {
		d := decs[idx%len(decs)]
		b.out(b.node(fmt.Sprintf("po%d", i), fmt.Sprintf("%s*%s+%s*!%s", sig, d, alu["cy"], d), sig, d, alu["cy"]))
		i++
	}
	return b.done()
}

// C5315 is a stand-in for the 9-bit ALU: two ALU slices with selector
// logic and a comparator.
func C5315() *network.Network {
	b := newBuilder("c5315")
	alu1 := b.graft(ALU(9), "u1_", nil, true)
	alu2 := b.graft(ALU(9), "u2_", nil, true)
	cmp := b.graft(Comparator(9), "cmp_", nil, false)
	ctl := b.graft(RandomDAG(30, 350, 5315), "ctl_", nil, false)
	sel := cmp["lt"]
	i := 0
	for idx := 0; idx < 9; idx++ {
		y1 := alu1[bit("y", idx)]
		y2 := alu2[bit("y", idx)]
		b.out(b.node(fmt.Sprintf("sel%d", i), fmt.Sprintf("%s*%s+!%s*%s", sel, y1, sel, y2), sel, y1, y2))
		i++
	}
	for _, sig := range sortedValues(ctl) {
		b.out(b.node(fmt.Sprintf("po%d", i), fmt.Sprintf("%s^%s", sig, sel), sig, sel))
		i++
	}
	return b.done()
}

// C6288 is the 16x16 array multiplier — structurally the real C6288.
func C6288() *network.Network {
	nw := ArrayMultiplier(16)
	nw.Name = "c6288"
	return nw
}

// C7552 is a stand-in for the 34-bit adder/comparator: a wide adder,
// a comparator, parity chains and control glue.
func C7552() *network.Network {
	b := newBuilder("c7552")
	add := b.graft(CarrySelectAdder(34, 4), "add_", nil, true)
	cmp := b.graft(Comparator(32), "cmp_", nil, false)
	par := b.graft(ParityTree(32), "par_", nil, false)
	ctl := b.graft(RandomDAG(32, 500, 7552), "ctl_", nil, false)
	i := 0
	for _, sig := range append(sortedValues(cmp), sortedValues(ctl)...) {
		b.out(b.node(fmt.Sprintf("po%d", i),
			fmt.Sprintf("%s^%s^%s", sig, par["par"], add["cout"]), sig, par["par"], add["cout"]))
		i++
	}
	return b.done()
}

// Suite returns the five circuits of the paper's Tables 1-3, in table
// order.
func Suite() []Circuit {
	return []Circuit{
		{"C2670", C2670()},
		{"C3540", C3540()},
		{"C5315", C5315()},
		{"C6288", C6288()},
		{"C7552", C7552()},
	}
}

// FullSuite returns the extended ISCAS-85-like set including the
// smaller classics, for wider experiments.
func FullSuite() []Circuit {
	return append([]Circuit{
		{"C432", C432()},
		{"C499", C499()},
		{"C880", C880()},
		{"C1355", C1355()},
		{"C1908", C1908()},
	}, Suite()...)
}

// sortedValues returns the map's values ordered by key.
func sortedValues(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }
