package bench

import (
	"fmt"
	"math/rand"
	"testing"

	"dagcover/internal/network"
	"dagcover/internal/subject"
)

// lanes evaluates the network on 64 random vectors at once and returns
// a per-lane accessor for node values.
type lanes struct {
	vals map[string]uint64
}

func runLanes(t *testing.T, nw *network.Network, rng *rand.Rand) (*lanes, map[string]uint64) {
	t.Helper()
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{}
	for _, pi := range nw.Inputs() {
		in[pi.Name] = rng.Uint64()
	}
	for _, l := range nw.Latches() {
		in[l.Output.Name] = rng.Uint64()
	}
	vals, err := sim.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	return &lanes{vals: vals}, in
}

func (l *lanes) bit(name string, lane int) int {
	return int(l.vals[name] >> uint(lane) & 1)
}

// word assembles prefix0..prefix(n-1) into an integer for a lane.
func (l *lanes) word(prefix string, n, lane int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= uint64(l.bit(fmt.Sprintf("%s%d", prefix, i), lane)) << uint(i)
	}
	return v
}

func inputWord(in map[string]uint64, prefix string, n, lane int) uint64 {
	var v uint64
	for i := 0; i < n; i++ {
		v |= (in[fmt.Sprintf("%s%d", prefix, i)] >> uint(lane) & 1) << uint(i)
	}
	return v
}

func TestRippleAdder(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 4, 8, 16} {
		nw := RippleAdder(n)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 5 {
			a := inputWord(in, "a", n, lane)
			b := inputWord(in, "b", n, lane)
			cin := in["cin"] >> uint(lane) & 1
			want := a + b + cin
			got := l.word("s", n, lane) | l.vals["cout"]>>uint(lane)&1<<uint(n)
			if got != want {
				t.Fatalf("n=%d lane %d: %d+%d+%d = %d, got %d", n, lane, a, b, cin, want, got)
			}
		}
	}
}

func TestCarrySelectAdder(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{4, 12, 34} {
		nw := CarrySelectAdder(n, 4)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 7 {
			a := inputWord(in, "a", n, lane)
			b := inputWord(in, "b", n, lane)
			cin := in["cin"] >> uint(lane) & 1
			want := a + b + cin
			got := l.word("s", n, lane) | l.vals["cout"]>>uint(lane)&1<<uint(n)
			if got != want {
				t.Fatalf("n=%d lane %d: %d+%d+%d = %d, got %d", n, lane, a, b, cin, want, got)
			}
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{1, 2, 4, 8, 16} {
		nw := ArrayMultiplier(n)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 9 {
			a := inputWord(in, "a", n, lane)
			b := inputWord(in, "b", n, lane)
			want := a * b
			got := l.word("p", 2*n, lane)
			if got != want {
				t.Fatalf("n=%d lane %d: %d*%d = %d, got %d", n, lane, a, b, want, got)
			}
		}
	}
}

func TestComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	nw := Comparator(8)
	l, in := runLanes(t, nw, rng)
	for lane := 0; lane < 64; lane++ {
		a := inputWord(in, "a", 8, lane)
		b := inputWord(in, "b", 8, lane)
		if got := l.bit("lt", lane) == 1; got != (a < b) {
			t.Fatalf("lane %d: lt(%d,%d) = %v", lane, a, b, got)
		}
		if got := l.bit("eq", lane) == 1; got != (a == b) {
			t.Fatalf("lane %d: eq(%d,%d) = %v", lane, a, b, got)
		}
		if got := l.bit("gt", lane) == 1; got != (a > b) {
			t.Fatalf("lane %d: gt(%d,%d) = %v", lane, a, b, got)
		}
	}
}

func TestParityTree(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{2, 7, 32} {
		nw := ParityTree(n)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 11 {
			want := 0
			for i := 0; i < n; i++ {
				want ^= int(in[fmt.Sprintf("x%d", i)] >> uint(lane) & 1)
			}
			if got := l.bit("par", lane); got != want {
				t.Fatalf("n=%d lane %d: parity %d, got %d", n, lane, want, got)
			}
		}
	}
}

func TestMuxTree(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nw := MuxTree(3)
	l, in := runLanes(t, nw, rng)
	for lane := 0; lane < 64; lane++ {
		sel := int(inputWord(in, "s", 3, lane))
		want := int(in[fmt.Sprintf("d%d", sel)] >> uint(lane) & 1)
		if got := l.bit("y", lane); got != want {
			t.Fatalf("lane %d: mux sel=%d want %d got %d", lane, sel, want, got)
		}
	}
}

func TestDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nw := Decoder(3)
	l, in := runLanes(t, nw, rng)
	for lane := 0; lane < 64; lane++ {
		addr := int(inputWord(in, "a", 3, lane))
		en := int(in["en"] >> uint(lane) & 1)
		for v := 0; v < 8; v++ {
			want := 0
			if en == 1 && v == addr {
				want = 1
			}
			if got := l.bit(fmt.Sprintf("y%d", v), lane); got != want {
				t.Fatalf("lane %d: y%d = %d, want %d (addr %d en %d)", lane, v, got, want, addr, en)
			}
		}
	}
}

func TestPriorityEncoder(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	nw := PriorityEncoder(8)
	l, in := runLanes(t, nw, rng)
	for lane := 0; lane < 64; lane++ {
		req := int(inputWord(in, "r", 8, lane))
		if req == 0 {
			if l.bit("valid", lane) != 0 {
				t.Fatalf("lane %d: valid asserted with no requests", lane)
			}
			continue
		}
		want := 0
		for i := 7; i >= 0; i-- {
			if req>>uint(i)&1 == 1 {
				want = i
				break
			}
		}
		if l.bit("valid", lane) != 1 {
			t.Fatalf("lane %d: valid not asserted", lane)
		}
		if got := int(l.word("idx", 3, lane)); got != want {
			t.Fatalf("lane %d: req %08b -> idx %d, want %d", lane, req, got, want)
		}
	}
}

func TestALU(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	nw := ALU(8)
	l, in := runLanes(t, nw, rng)
	for lane := 0; lane < 64; lane++ {
		a := inputWord(in, "a", 8, lane)
		b := inputWord(in, "b", 8, lane)
		op := int(in["op1"]>>uint(lane)&1)<<1 | int(in["op0"]>>uint(lane)&1)
		var want uint64
		switch op {
		case 0:
			want = (a + b) & 0xFF
		case 1:
			want = a & b
		case 2:
			want = a | b
		case 3:
			want = a ^ b
		}
		if got := l.word("y", 8, lane); got != want {
			t.Fatalf("lane %d: op %d a=%d b=%d want %d got %d", lane, op, a, b, want, got)
		}
		if op == 0 {
			wantCy := (a + b) >> 8 & 1
			if got := uint64(l.bit("cy", lane)); got != wantCy {
				t.Fatalf("lane %d: carry %d want %d", lane, got, wantCy)
			}
		}
	}
}

func TestHammingRoundTripAndCorrection(t *testing.T) {
	const d = 16
	enc := HammingEncoder(d)
	dec := HammingDecoder(d)
	p := hammingParityBits(d)
	n := d + p
	rng := rand.New(rand.NewSource(10))
	encSim, err := network.NewSimulator(enc)
	if err != nil {
		t.Fatal(err)
	}
	decSim, err := network.NewSimulator(dec)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		in := map[string]uint64{}
		for i := 0; i < d; i++ {
			in[fmt.Sprintf("d%d", i)] = rng.Uint64()
		}
		code, err := encSim.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		// Flip one codeword position per trial (0 = no error).
		flip := trial % (n + 1)
		decIn := map[string]uint64{}
		for pos := 1; pos <= n; pos++ {
			v := code[fmt.Sprintf("c%d", pos)]
			if pos == flip {
				v = ^v
			}
			decIn[fmt.Sprintf("c%d", pos)] = v
		}
		out, err := decSim.Run(decIn)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < d; i++ {
			if out[fmt.Sprintf("d%d", i)] != in[fmt.Sprintf("d%d", i)] {
				t.Fatalf("trial %d (flip %d): data bit %d not corrected", trial, flip, i)
			}
		}
	}
}

func TestRandomDAGDeterministic(t *testing.T) {
	a := RandomDAG(10, 100, 42)
	b := RandomDAG(10, 100, 42)
	if a.NumGates() != b.NumGates() {
		t.Fatal("RandomDAG not deterministic in size")
	}
	if a.NumGates() == 0 || len(a.Outputs()) == 0 {
		t.Fatalf("degenerate random DAG: %d gates %d outputs", a.NumGates(), len(a.Outputs()))
	}
	// Same seeds, same behaviour.
	rng := rand.New(rand.NewSource(11))
	la, in := runLanes(t, a, rng)
	simB, err := network.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	vb, err := simB.Run(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range a.Outputs() {
		if la.vals[o.Name] != vb[o.Name] {
			t.Fatal("RandomDAG not deterministic in function")
		}
	}
	c := RandomDAG(10, 100, 43)
	if c.NumGates() == a.NumGates() && sameNames(a, c) {
		// Sizes can collide; functions almost surely differ — spot
		// check one output value.
		t.Log("seeds 42 and 43 produced same-size DAGs (acceptable)")
	}
}

func sameNames(a, b *network.Network) bool {
	an, bn := a.SortedNodeNames(), b.SortedNodeNames()
	if len(an) != len(bn) {
		return false
	}
	for i := range an {
		if an[i] != bn[i] {
			return false
		}
	}
	return true
}

func TestSuiteShapes(t *testing.T) {
	for _, c := range FullSuite() {
		if err := c.Network.Check(); err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		st, err := c.Network.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Outputs == 0 || st.Inputs == 0 {
			t.Errorf("%s: degenerate io %+v", c.Name, st)
		}
		g, err := subject.FromNetwork(c.Network)
		if err != nil {
			t.Fatalf("%s: %v", c.Name, err)
		}
		ss := g.Stats()
		// The benchmark property that matters for mapping is the
		// subject-graph scale: hundreds to thousands of NAND2/INV
		// nodes, like the real ISCAS-85 circuits.
		if ss.Nands+ss.Invs < 200 {
			t.Errorf("%s: subject graph has only %d gates; too small", c.Name, ss.Nands+ss.Invs)
		}
		if ss.MultiFanout == 0 {
			t.Errorf("%s: no multi-fanout nodes; tree vs DAG comparison would be vacuous", c.Name)
		}
		t.Logf("%s: network{%v} subject{%v}", c.Name, st, ss)
	}
}

func TestC6288IsDeepMultiplier(t *testing.T) {
	nw := C6288()
	st, err := nw.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inputs != 32 || st.Outputs != 32 {
		t.Errorf("c6288 io = %d/%d, want 32/32", st.Inputs, st.Outputs)
	}
	if st.Depth < 30 {
		t.Errorf("c6288 depth = %d; the array multiplier must be deep", st.Depth)
	}
}

func TestSequentialGenerators(t *testing.T) {
	sr := ShiftRegister(5)
	if len(sr.Latches()) != 5 {
		t.Errorf("shift register latches = %d", len(sr.Latches()))
	}
	if err := sr.Check(); err != nil {
		t.Fatal(err)
	}
	corr := Correlator(8)
	if len(corr.Latches()) != 8 {
		t.Errorf("correlator latches = %d", len(corr.Latches()))
	}
	if err := corr.Check(); err != nil {
		t.Fatal(err)
	}
	palu := PipelinedALU(4, 2)
	if len(palu.Latches()) != (4*2+2)*2 {
		t.Errorf("pipelined ALU latches = %d, want %d", len(palu.Latches()), (4*2+2)*2)
	}
	if err := palu.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelatorFunction(t *testing.T) {
	// Clock the correlator and check y = XOR of XNOR(tap_i, p_i)
	// against a software model of the shift register.
	const k = 4
	nw := Correlator(k)
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	state := make([]int, k) // shift register model
	regs := map[string]uint64{}
	for _, l := range nw.Latches() {
		regs[l.Output.Name] = 0
	}
	pattern := make([]int, k)
	pin := map[string]uint64{}
	for i := range pattern {
		pattern[i] = rng.Intn(2)
		pin[fmt.Sprintf("p%d", i)] = 0
		if pattern[i] == 1 {
			pin[fmt.Sprintf("p%d", i)] = 1
		}
	}
	for cycle := 0; cycle < 30; cycle++ {
		x := rng.Intn(2)
		in := map[string]uint64{"x": uint64(x)}
		for k2, v := range pin {
			in[k2] = v
		}
		for k2, v := range regs {
			in[k2] = v
		}
		vals, err := sim.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		want := 0
		for i := 0; i < k; i++ {
			m := 1 ^ (state[i] ^ pattern[i])
			want ^= m
		}
		if got := int(vals["y"] & 1); got != want {
			t.Fatalf("cycle %d: y = %d, want %d", cycle, got, want)
		}
		// Advance registers.
		for _, l := range nw.Latches() {
			regs[l.Output.Name] = vals[l.Input.Name] & 1
		}
		copy(state[1:], state[:k-1])
		state[0] = x
	}
}

func TestCounter(t *testing.T) {
	const n = 4
	nw := Counter(n)
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	state := map[string]uint64{}
	for _, l := range nw.Latches() {
		state[l.Output.Name] = 0
	}
	expected := uint64(0)
	for cycle := 0; cycle < 40; cycle++ {
		en := uint64(cycle % 3 % 2) // mixed enable pattern
		in := map[string]uint64{"en": en}
		for k, v := range state {
			in[k] = v
		}
		vals, err := sim.Run(in)
		if err != nil {
			t.Fatal(err)
		}
		var got uint64
		for i := 0; i < n; i++ {
			got |= (vals[fmt.Sprintf("o%d", i)] & 1) << uint(i)
		}
		if got != expected {
			t.Fatalf("cycle %d: counter = %d, want %d", cycle, got, expected)
		}
		if en == 1 {
			expected = (expected + 1) % (1 << n)
		}
		for _, l := range nw.Latches() {
			state[l.Output.Name] = vals[l.Input.Name] & 1
		}
	}
}
