package bench

import (
	"fmt"

	"dagcover/internal/network"
)

// ShiftRegister builds an n-stage shift register on input "x" with
// outputs q1..qn (qi = x delayed by i cycles).
func ShiftRegister(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("shift%d", n))
	prev := b.in("x")
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("q%d", i)
		if _, err := b.nw.AddLatch(prev, name, false); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		prev = name
	}
	// Expose the final stage through a buffer node so the PO is a
	// gate (mappable).
	b.out(b.node("y", prev, prev))
	return b.done()
}

// Correlator builds a Leiserson-Saxe-style correlator: the input
// stream is shifted through k registers, each tap is compared against
// a pattern input, and the match bits are combined by a balanced XOR
// tree into "y". All combinational logic sits after the registers, so
// retiming can pipeline the tree — the classic retiming benchmark
// shape.
func Correlator(k int) *network.Network {
	b := newBuilder(fmt.Sprintf("corr%d", k))
	x := b.in("x")
	var taps []string
	prev := x
	for i := 1; i <= k; i++ {
		name := fmt.Sprintf("sr%d", i)
		if _, err := b.nw.AddLatch(prev, name, false); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		taps = append(taps, name)
		prev = name
	}
	// Compare each tap with a pattern bit.
	var match []string
	for i, tap := range taps {
		p := b.in(fmt.Sprintf("p%d", i))
		match = append(match, b.node(fmt.Sprintf("m%d", i),
			fmt.Sprintf("!(%s^%s)", tap, p), tap, p))
	}
	// Balanced XOR-combine tree (stands in for the adder tree).
	level := 0
	cur := match
	for len(cur) > 1 {
		var next []string
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.node(fmt.Sprintf("t%d_%d", level, i/2),
				fmt.Sprintf("%s^%s", cur[i], cur[i+1]), cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
		level++
	}
	b.out(b.node("y", cur[0], cur[0]))
	return b.done()
}

// PipelinedALU builds an n-bit ALU whose inputs pass through `stages`
// register stages before the logic — a deep sequential circuit whose
// minimum period improves substantially under retiming.
func PipelinedALU(n, stages int) *network.Network {
	b := newBuilder(fmt.Sprintf("palu%d_%d", n, stages))
	inputMap := map[string]string{}
	pipe := func(base string) string {
		cur := b.in(base)
		for s := 1; s <= stages; s++ {
			name := fmt.Sprintf("%s_q%d", base, s)
			if _, err := b.nw.AddLatch(cur, name, false); err != nil {
				panic(fmt.Sprintf("bench: %v", err))
			}
			cur = name
		}
		return cur
	}
	for i := 0; i < n; i++ {
		inputMap[bit("a", i)] = pipe(bit("a", i))
		inputMap[bit("b", i)] = pipe(bit("b", i))
	}
	inputMap["op0"] = pipe("op0")
	inputMap["op1"] = pipe("op1")
	b.graft(ALU(n), "alu_", inputMap, true)
	return b.done()
}

// Counter builds an n-bit binary up-counter with enable: an
// autonomous registered loop (state feeds back through increment
// logic), outputs q0..q(n-1). A useful retiming/sequential-mapping
// subject whose cycles bound the achievable period.
func Counter(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("count%d", n))
	en := b.in("en")
	// State registers exist before their drivers (feedback).
	for i := 0; i < n; i++ {
		if _, err := b.nw.AddLatchOutput(bit("q", i)); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
	}
	carry := en
	for i := 0; i < n; i++ {
		q := bit("q", i)
		d := b.node(fmt.Sprintf("d%d", i), fmt.Sprintf("%s^%s", q, carry), q, carry)
		if i+1 < n {
			carry = b.node(fmt.Sprintf("c%d", i), fmt.Sprintf("%s*%s", q, carry), q, carry)
		}
		if _, err := b.nw.ConnectLatch(d, q, false); err != nil {
			panic(fmt.Sprintf("bench: %v", err))
		}
		b.out(b.node(fmt.Sprintf("o%d", i), q, q))
	}
	return b.done()
}
