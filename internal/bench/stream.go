package bench

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
)

// Streaming benchmark families: parameterized generators that emit
// flat BLIF text directly to a writer, without building a
// network.Network in memory. They exist for the million-gate scale
// tests — a network.Network of several million nodes costs far more
// memory than the mapped result, so the big families are produced and
// consumed as streams end to end (genbench writes them line by line,
// the streaming BLIF reader folds them straight into a subject
// graph).
//
// Two families are provided:
//
//	mult<N>        N x N ripple array multiplier (the C6288 structure
//	               scaled up; mult16 is C6288-sized, mult256 exceeds a
//	               million subject gates)
//	alumesh<WxH>   W x H mesh of 4-bit ALU tiles; each tile combines
//	               the vector arriving from the west with the vector
//	               from the north under two global opcode bits
//
// All generators are deterministic: the same family name always
// produces byte-identical BLIF.

// streamFamilyRE matches the parameterized family names understood by
// StreamFamily.
var streamFamilyRE = regexp.MustCompile(`^(mult([0-9]+)|alumesh([0-9]+)x([0-9]+))$`)

// StreamFamily resolves a parameterized family name ("mult256",
// "alumesh64x64") to its generator. It returns false for names
// outside the streaming families (fixed-size suite circuits are
// served by the network generators instead).
func StreamFamily(name string) (func(w io.Writer) error, bool) {
	m := streamFamilyRE.FindStringSubmatch(name)
	if m == nil {
		return nil, false
	}
	if m[2] != "" {
		n, err := strconv.Atoi(m[2])
		if err != nil || n < 1 || n > 4096 {
			return nil, false
		}
		return func(w io.Writer) error { return StreamMult(w, n) }, true
	}
	wd, err1 := strconv.Atoi(m[3])
	ht, err2 := strconv.Atoi(m[4])
	if err1 != nil || err2 != nil || wd < 1 || ht < 1 || wd > 1024 || ht > 1024 {
		return nil, false
	}
	return func(w io.Writer) error { return StreamALUMesh(w, wd, ht) }, true
}

// streamWriter wraps buffered BLIF emission with sticky-error
// semantics so generator bodies stay linear.
type streamWriter struct {
	w   *bufio.Writer
	err error
}

func newStreamWriter(w io.Writer) *streamWriter {
	return &streamWriter{w: bufio.NewWriterSize(w, 1<<16)}
}

func (s *streamWriter) line(parts ...string) {
	if s.err != nil {
		return
	}
	for i, p := range parts {
		if i > 0 {
			if _, s.err = s.w.WriteString(" "); s.err != nil {
				return
			}
		}
		if _, s.err = s.w.WriteString(p); s.err != nil {
			return
		}
	}
	_, s.err = s.w.WriteString("\n")
}

// names emits one .names declaration with the given cover rows.
func (s *streamWriter) names(cover []string, signals ...string) {
	s.line(append([]string{".names"}, signals...)...)
	for _, row := range cover {
		s.line(row)
	}
}

func (s *streamWriter) flush() error {
	if s.err != nil {
		return s.err
	}
	return s.w.Flush()
}

// Cover bodies for the structural cells of the streaming families.
var (
	coverAnd2 = []string{"11 1"}
	coverBuf  = []string{"1 1"}
	// Half adder: sum and carry of two bits.
	coverXor2 = []string{"10 1", "01 1"}
	// Full adder: 3-input parity and majority.
	coverSum3 = []string{"100 1", "010 1", "001 1", "111 1"}
	coverMaj3 = []string{"11- 1", "1-1 1", "-11 1"}
	coverOr2  = []string{"1- 1", "-1 1"}
	// 4-way one-hot select over inputs (op1 op0 s andv orv xorv).
	coverMux4 = []string{
		"001--- 1", // op=00 selects the adder sum
		"01-1-- 1", // op=01 selects and
		"10--1- 1", // op=10 selects or
		"11---1 1", // op=11 selects xor
	}
)

// StreamMult writes an N x N array multiplier as flat BLIF: inputs
// a0..a(N-1), b0..b(N-1), outputs p0..p(2N-1). The structure mirrors
// ArrayMultiplier (partial products accumulated row by row with
// ripple adders) but is emitted as text without a network.
func StreamMult(w io.Writer, n int) error {
	if n < 1 {
		return fmt.Errorf("bench: mult width must be positive, got %d", n)
	}
	s := newStreamWriter(w)
	s.line(".model", "mult"+strconv.Itoa(n))
	ins := []string{".inputs"}
	for i := 0; i < n; i++ {
		ins = append(ins, "a"+strconv.Itoa(i))
	}
	for j := 0; j < n; j++ {
		ins = append(ins, "b"+strconv.Itoa(j))
	}
	s.line(ins...)
	outs := []string{".outputs"}
	top := 2 * n
	if n == 1 {
		top = 1 // a 1x1 multiplier has a single product bit
	}
	for k := 0; k < top; k++ {
		outs = append(outs, "p"+strconv.Itoa(k))
	}
	s.line(outs...)

	// Partial products pp<j>_<i> = a<i> & b<j>, row by row.
	pp := func(j, i int) string { return "pp" + strconv.Itoa(j) + "_" + strconv.Itoa(i) }
	for j := 0; j < n; j++ {
		bj := "b" + strconv.Itoa(j)
		for i := 0; i < n; i++ {
			s.names(coverAnd2, "a"+strconv.Itoa(i), bj, pp(j, i))
		}
	}

	// Accumulate with ripple rows, mirroring ArrayMultiplier.addBits:
	// acc[w] holds the running signal of absolute weight w.
	acc := make([]string, 2*n)
	for i := 0; i < n; i++ {
		acc[i] = pp(0, i)
	}
	for j := 1; j < n; j++ {
		carry := ""
		for i := 0; i < n; i++ {
			wt := j + i
			name := "r" + strconv.Itoa(j) + "_" + strconv.Itoa(i)
			acc[wt], carry = s.addBits(name, acc[wt], pp(j, i), carry)
		}
		acc[j+n] = carry
	}
	for wt := 0; wt < top; wt++ {
		if acc[wt] == "" {
			continue
		}
		s.names(coverBuf, acc[wt], "p"+strconv.Itoa(wt))
	}
	s.line(".end")
	return s.flush()
}

// addBits emits a half/full adder over the non-empty operands and
// returns the sum and carry signal names (empty carry when fewer than
// two operands).
func (s *streamWriter) addBits(name, x, y, z string) (sum, carry string) {
	var in []string
	for _, v := range []string{x, y, z} {
		if v != "" {
			in = append(in, v)
		}
	}
	switch len(in) {
	case 0:
		return "", ""
	case 1:
		return in[0], ""
	case 2:
		sum, carry = name+"s", name+"c"
		s.names(coverXor2, in[0], in[1], sum)
		s.names(coverAnd2, in[0], in[1], carry)
		return sum, carry
	default:
		sum, carry = name+"s", name+"c"
		s.names(coverSum3, in[0], in[1], in[2], sum)
		s.names(coverMaj3, in[0], in[1], in[2], carry)
		return sum, carry
	}
}

// aluTileBits is the datapath width of one mesh tile.
const aluTileBits = 4

// StreamALUMesh writes a W x H mesh of 4-bit ALU tiles as flat BLIF.
// Tile (r,c) combines the 4-bit vector arriving from the west (the
// east output of tile (r,c-1), or primary inputs w<r>_* on the west
// edge) with the vector from the north (south output of (r-1,c), or
// n<c>_* on the north edge) under two global opcode bits op0/op1:
//
//	east  = mux(op, west+north, west&north, west|north, west^north)
//	south = west ^ north ^ carry-chain parity mixing
//
// Outputs are the east vectors of the last column and the south
// vectors of the last row. The mesh is shallow per tile but long in
// both axes, so it exercises wavefront scheduling very differently
// from the deep multiplier array.
func StreamALUMesh(w io.Writer, wd, ht int) error {
	if wd < 1 || ht < 1 {
		return fmt.Errorf("bench: alumesh dimensions must be positive, got %dx%d", wd, ht)
	}
	s := newStreamWriter(w)
	s.line(".model", "alumesh"+strconv.Itoa(wd)+"x"+strconv.Itoa(ht))
	ins := []string{".inputs", "op0", "op1"}
	for r := 0; r < ht; r++ {
		for b := 0; b < aluTileBits; b++ {
			ins = append(ins, fmt.Sprintf("w%d_%d", r, b))
		}
	}
	for c := 0; c < wd; c++ {
		for b := 0; b < aluTileBits; b++ {
			ins = append(ins, fmt.Sprintf("n%d_%d", c, b))
		}
	}
	s.line(ins...)
	outs := []string{".outputs"}
	for r := 0; r < ht; r++ {
		for b := 0; b < aluTileBits; b++ {
			outs = append(outs, fmt.Sprintf("e%d_%d", r, b))
		}
	}
	for c := 0; c < wd; c++ {
		for b := 0; b < aluTileBits; b++ {
			outs = append(outs, fmt.Sprintf("s%d_%d", c, b))
		}
	}
	s.line(outs...)

	// west[r][b] / north[c][b] hold the current frontier signals.
	west := make([][]string, ht)
	for r := 0; r < ht; r++ {
		west[r] = make([]string, aluTileBits)
		for b := 0; b < aluTileBits; b++ {
			west[r][b] = fmt.Sprintf("w%d_%d", r, b)
		}
	}
	north := make([][]string, wd)
	for c := 0; c < wd; c++ {
		north[c] = make([]string, aluTileBits)
		for b := 0; b < aluTileBits; b++ {
			north[c][b] = fmt.Sprintf("n%d_%d", c, b)
		}
	}

	for r := 0; r < ht; r++ {
		for c := 0; c < wd; c++ {
			tile := fmt.Sprintf("t%d_%d", r, c)
			east, south := s.aluTile(tile, west[r], north[c])
			west[r], north[c] = east, south
		}
	}
	for r := 0; r < ht; r++ {
		for b := 0; b < aluTileBits; b++ {
			s.names(coverBuf, west[r][b], fmt.Sprintf("e%d_%d", r, b))
		}
	}
	for c := 0; c < wd; c++ {
		for b := 0; b < aluTileBits; b++ {
			s.names(coverBuf, north[c][b], fmt.Sprintf("s%d_%d", c, b))
		}
	}
	s.line(".end")
	return s.flush()
}

// aluTile emits one 4-bit tile and returns its east and south output
// vectors.
func (s *streamWriter) aluTile(tile string, west, north []string) (east, south []string) {
	east = make([]string, aluTileBits)
	south = make([]string, aluTileBits)
	carry := ""
	for b := 0; b < aluTileBits; b++ {
		wb, nb := west[b], north[b]
		pre := tile + "_" + strconv.Itoa(b)
		sum := pre + "sum"
		if carry == "" {
			s.names(coverXor2, wb, nb, sum)
			carry = pre + "cy"
			s.names(coverAnd2, wb, nb, carry)
		} else {
			s.names(coverSum3, wb, nb, carry, sum)
			nc := pre + "cy"
			s.names(coverMaj3, wb, nb, carry, nc)
			carry = nc
		}
		andv, orv, xorv := pre+"and", pre+"or", pre+"xor"
		s.names(coverAnd2, wb, nb, andv)
		s.names(coverOr2, wb, nb, orv)
		s.names(coverXor2, wb, nb, xorv)
		east[b] = pre + "e"
		s.names(coverMux4, "op1", "op0", sum, andv, orv, xorv, east[b])
		south[b] = pre + "s"
		s.names(coverXor2, xorv, carry, south[b])
	}
	return east, south
}
