package bench

import (
	"fmt"

	"dagcover/internal/network"
)

// KoggeStoneAdder builds an n-bit parallel-prefix adder: the same
// ports as RippleAdder but logarithmic carry depth — a structurally
// different adder for architecture studies.
func KoggeStoneAdder(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("ksadd%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for i := 0; i < n; i++ {
		b.in(bit("b", i))
	}
	cin := b.in("cin")
	// Generate/propagate pairs.
	gen := make([]string, n)
	prop := make([]string, n)
	for i := 0; i < n; i++ {
		a, bb := bit("a", i), bit("b", i)
		gen[i] = b.node(fmt.Sprintf("g0_%d", i), fmt.Sprintf("%s*%s", a, bb), a, bb)
		prop[i] = b.node(fmt.Sprintf("p0_%d", i), fmt.Sprintf("%s^%s", a, bb), a, bb)
	}
	// Kogge-Stone prefix tree over (g, p).
	g := append([]string(nil), gen...)
	p := append([]string(nil), prop...)
	for d, lvl := 1, 1; d < n; d, lvl = d*2, lvl+1 {
		ng := append([]string(nil), g...)
		np := append([]string(nil), p...)
		for i := d; i < n; i++ {
			ng[i] = b.node(fmt.Sprintf("g%d_%d", lvl, i),
				fmt.Sprintf("%s+%s*%s", g[i], p[i], g[i-d]), g[i], p[i], g[i-d])
			np[i] = b.node(fmt.Sprintf("p%d_%d", lvl, i),
				fmt.Sprintf("%s*%s", p[i], p[i-d]), p[i], p[i-d])
		}
		g, p = ng, np
	}
	// Carries: c0 = cin; c(i+1) = g[i] + p[i]*cin (prefix includes bit 0).
	carry := make([]string, n+1)
	carry[0] = cin
	for i := 0; i < n; i++ {
		carry[i+1] = b.node(fmt.Sprintf("c%d", i+1),
			fmt.Sprintf("%s+%s*%s", g[i], p[i], cin), g[i], p[i], cin)
	}
	for i := 0; i < n; i++ {
		b.out(b.node(bit("s", i), fmt.Sprintf("%s^%s", prop[i], carry[i]), prop[i], carry[i]))
	}
	b.out(b.node("cout", carry[n], carry[n]))
	return b.done()
}

// WallaceMultiplier builds an n x n multiplier with a Wallace-tree
// partial-product reduction and a final ripple adder: the same ports
// as ArrayMultiplier but logarithmic reduction depth.
func WallaceMultiplier(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("wmult%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for j := 0; j < n; j++ {
		b.in(bit("b", j))
	}
	// Buckets of bits per weight.
	buckets := make([][]string, 2*n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			pp := b.node(fmt.Sprintf("pp%d_%d", j, i),
				fmt.Sprintf("%s*%s", bit("a", i), bit("b", j)), bit("a", i), bit("b", j))
			buckets[i+j] = append(buckets[i+j], pp)
		}
	}
	// Reduce with 3:2 compressors until every bucket has <= 2 bits.
	stage := 0
	for {
		again := false
		next := make([][]string, 2*n)
		for w := 0; w < 2*n; w++ {
			bits := buckets[w]
			i := 0
			for ; i+2 < len(bits); i += 3 {
				name := fmt.Sprintf("w%d_%d_%d", stage, w, i)
				s, c := b.addBits(name, bits[i], bits[i+1], bits[i+2])
				next[w] = append(next[w], s)
				if c != "" {
					next[w+1] = append(next[w+1], c)
				}
				again = true
			}
			// 2 leftovers pass through (or compress with a half adder
			// when the bucket is still oversized).
			next[w] = append(next[w], bits[i:]...)
		}
		buckets = next
		stage++
		oversized := false
		for _, bits := range buckets {
			if len(bits) > 2 {
				oversized = true
			}
		}
		if !oversized {
			break
		}
		if !again && oversized {
			panic("bench: Wallace reduction stalled")
		}
	}
	// Final carry-propagate ripple over the two rows.
	carry := ""
	for w := 0; w < 2*n; w++ {
		bits := buckets[w]
		var x, y string
		if len(bits) > 0 {
			x = bits[0]
		}
		if len(bits) > 1 {
			y = bits[1]
		}
		name := fmt.Sprintf("f%d", w)
		s, c := b.addBits(name, x, y, carry)
		carry = c
		if s == "" {
			// Only the top weight can be empty (n == 1: no carries
			// ever reach it); the product bit is constant 0 and the
			// output is simply omitted.
			continue
		}
		b.out(b.node(bit("p", w), s, s))
	}
	return b.done()
}

// BarrelShifter builds an n-bit logical left shifter (n a power of
// two): data d0.., shift amount s0..s(log2 n - 1), outputs y0...
func BarrelShifter(n int) *network.Network {
	if n&(n-1) != 0 || n < 2 {
		panic("bench: BarrelShifter needs a power-of-two width")
	}
	b := newBuilder(fmt.Sprintf("bshift%d", n))
	cur := make([]string, n)
	for i := 0; i < n; i++ {
		cur[i] = b.in(bit("d", i))
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	var sel []string
	for k := 0; k < bits; k++ {
		sel = append(sel, b.in(bit("s", k)))
	}
	for k := 0; k < bits; k++ {
		shift := 1 << k
		next := make([]string, n)
		for i := 0; i < n; i++ {
			var from string
			if i >= shift {
				from = cur[i-shift]
			}
			name := fmt.Sprintf("l%d_%d", k, i)
			if from == "" {
				// Shifted-in zero: y = !s * cur
				next[i] = b.node(name, fmt.Sprintf("!%s*%s", sel[k], cur[i]), sel[k], cur[i])
				continue
			}
			next[i] = b.node(name,
				fmt.Sprintf("%s*%s+!%s*%s", sel[k], from, sel[k], cur[i]), sel[k], from, cur[i])
		}
		cur = next
	}
	for i := 0; i < n; i++ {
		b.out(b.node(bit("y", i), cur[i], cur[i]))
	}
	return b.done()
}
