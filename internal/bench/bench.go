// Package bench generates benchmark circuits for the experiments:
// parameterized arithmetic/ECC/control generators and an ISCAS-85-like
// suite of stand-ins for the circuits used in the paper's tables
// (C2670, C3540, C5315, C6288, C7552 and the smaller classics).
//
// The original ISCAS-85 netlists are not redistributable here; the
// stand-ins reproduce the structural features the experiments depend
// on — function class, depth, reconvergence, multi-fanout density and
// approximate size (see DESIGN.md §4). C6288 is special: the real
// circuit is exactly a 16x16 array multiplier, which ArrayMultiplier
// reproduces faithfully.
//
// All generators are deterministic. Multi-bit ports use the naming
// convention name0, name1, ... with bit 0 least significant.
package bench

import (
	"fmt"

	"dagcover/internal/logic"
	"dagcover/internal/network"
)

// builder wraps network construction with panic-on-error semantics;
// generator bugs are programming errors, not runtime conditions.
type builder struct {
	nw *network.Network
}

func newBuilder(name string) *builder { return &builder{nw: network.New(name)} }

func (b *builder) in(name string) string {
	if _, err := b.nw.AddInput(name); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return name
}

// node adds a logic node; fn is parsed and must use only the fanins.
func (b *builder) node(name, fn string, fanins ...string) string {
	e, err := logic.Parse(fn)
	if err != nil {
		panic(fmt.Sprintf("bench: node %s: %v", name, err))
	}
	if _, err := b.nw.AddNode(name, fanins, e); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
	return name
}

func (b *builder) out(name string) {
	if err := b.nw.MarkOutput(name); err != nil {
		panic(fmt.Sprintf("bench: %v", err))
	}
}

func (b *builder) done() *network.Network {
	if err := b.nw.Check(); err != nil {
		panic(fmt.Sprintf("bench: generated network invalid: %v", err))
	}
	return b.nw
}

func bit(prefix string, i int) string { return fmt.Sprintf("%s%d", prefix, i) }

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..a(n-1),
// b0.., cin; outputs s0..s(n-1), cout.
func RippleAdder(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("radd%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for i := 0; i < n; i++ {
		b.in(bit("b", i))
	}
	carry := b.in("cin")
	for i := 0; i < n; i++ {
		a, bb := bit("a", i), bit("b", i)
		s := b.node(bit("s", i), fmt.Sprintf("%s^%s^%s", a, bb, carry), a, bb, carry)
		b.out(s)
		carry = b.node(fmt.Sprintf("c%d", i+1),
			fmt.Sprintf("%s*%s+%s*%s+%s*%s", a, bb, a, carry, bb, carry), a, bb, carry)
	}
	cout := b.node("cout", carry, carry)
	b.out(cout)
	return b.done()
}

// CarrySelectAdder builds an n-bit carry-select adder with the given
// block size: same ports as RippleAdder, shallower carry chain, more
// area — a structurally distinct adder for mapping comparisons.
func CarrySelectAdder(n, block int) *network.Network {
	if block < 1 {
		block = 4
	}
	b := newBuilder(fmt.Sprintf("csadd%d_%d", n, block))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for i := 0; i < n; i++ {
		b.in(bit("b", i))
	}
	carry := b.in("cin")
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		// Two speculative ripple chains (carry-in 0 and 1).
		c0, c1 := "", ""
		var s0s, s1s []string
		for i := lo; i < hi; i++ {
			a, bb := bit("a", i), bit("b", i)
			if i == lo {
				s0 := b.node(fmt.Sprintf("s0_%d", i), fmt.Sprintf("%s^%s", a, bb), a, bb)
				s1 := b.node(fmt.Sprintf("s1_%d", i), fmt.Sprintf("!(%s^%s)", a, bb), a, bb)
				c0 = b.node(fmt.Sprintf("c0_%d", i), fmt.Sprintf("%s*%s", a, bb), a, bb)
				c1 = b.node(fmt.Sprintf("c1_%d", i), fmt.Sprintf("%s+%s", a, bb), a, bb)
				s0s, s1s = append(s0s, s0), append(s1s, s1)
				continue
			}
			s0 := b.node(fmt.Sprintf("s0_%d", i), fmt.Sprintf("%s^%s^%s", a, bb, c0), a, bb, c0)
			s1 := b.node(fmt.Sprintf("s1_%d", i), fmt.Sprintf("%s^%s^%s", a, bb, c1), a, bb, c1)
			c0 = b.node(fmt.Sprintf("c0_%d", i),
				fmt.Sprintf("%s*%s+%s*%s+%s*%s", a, bb, a, c0, bb, c0), a, bb, c0)
			c1 = b.node(fmt.Sprintf("c1_%d", i),
				fmt.Sprintf("%s*%s+%s*%s+%s*%s", a, bb, a, c1, bb, c1), a, bb, c1)
			s0s, s1s = append(s0s, s0), append(s1s, s1)
		}
		// Select by the incoming carry.
		for i := lo; i < hi; i++ {
			s := b.node(bit("s", i),
				fmt.Sprintf("%s*%s+!%s*%s", carry, s1s[i-lo], carry, s0s[i-lo]),
				carry, s1s[i-lo], s0s[i-lo])
			b.out(s)
		}
		carry = b.node(fmt.Sprintf("c%d", hi),
			fmt.Sprintf("%s*%s+!%s*%s", carry, c1, carry, c0), carry, c1, c0)
	}
	cout := b.node("cout", carry, carry)
	b.out(cout)
	return b.done()
}

// ArrayMultiplier builds an n x n array multiplier (inputs a0.., b0..;
// outputs p0..p(2n-1)). For n=16 this is structurally the real C6288.
func ArrayMultiplier(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("mult%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for j := 0; j < n; j++ {
		b.in(bit("b", j))
	}
	// Partial products.
	pp := make([][]string, n)
	for j := 0; j < n; j++ {
		pp[j] = make([]string, n)
		for i := 0; i < n; i++ {
			pp[j][i] = b.node(fmt.Sprintf("pp%d_%d", j, i),
				fmt.Sprintf("%s*%s", bit("a", i), bit("b", j)), bit("a", i), bit("b", j))
		}
	}
	// Accumulate row by row with ripple adders, indexed by absolute
	// bit weight — the classic add-and-shift array (C6288 style:
	// deep, heavily reconvergent).
	acc := make([]string, 2*n)
	copy(acc, pp[0])
	for j := 1; j < n; j++ {
		carry := ""
		for i := 0; i < n; i++ {
			w := j + i
			name := fmt.Sprintf("r%d_%d", j, i)
			acc[w], carry = b.addBits(name, acc[w], pp[j][i], carry)
		}
		acc[j+n] = carry
	}
	for w := 0; w < 2*n; w++ {
		if acc[w] == "" {
			continue // the unused top weight of a 1x1 multiplier
		}
		b.out(b.node(bit("p", w), acc[w], acc[w]))
	}
	return b.done()
}

// addBits sums up to three optional one-bit signals, returning the
// sum and carry signals ("" where absent).
func (b *builder) addBits(name, x, y, z string) (sum, carry string) {
	var in []string
	for _, s := range []string{x, y, z} {
		if s != "" {
			in = append(in, s)
		}
	}
	switch len(in) {
	case 0:
		return "", ""
	case 1:
		return in[0], ""
	case 2:
		sum = b.node(name+"s", fmt.Sprintf("%s^%s", in[0], in[1]), in[0], in[1])
		carry = b.node(name+"c", fmt.Sprintf("%s*%s", in[0], in[1]), in[0], in[1])
		return sum, carry
	default:
		sum = b.node(name+"s", fmt.Sprintf("%s^%s^%s", in[0], in[1], in[2]), in[0], in[1], in[2])
		carry = b.node(name+"c",
			fmt.Sprintf("%s*%s+%s*%s+%s*%s", in[0], in[1], in[0], in[2], in[1], in[2]),
			in[0], in[1], in[2])
		return sum, carry
	}
}

// Comparator builds an n-bit magnitude comparator: outputs lt, eq, gt.
func Comparator(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("cmp%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for i := 0; i < n; i++ {
		b.in(bit("b", i))
	}
	// From MSB down: eq chain and lt/gt accumulation.
	eq := ""
	lt := ""
	gt := ""
	for i := n - 1; i >= 0; i-- {
		a, bb := bit("a", i), bit("b", i)
		eqI := b.node(fmt.Sprintf("eq%d", i), fmt.Sprintf("!(%s^%s)", a, bb), a, bb)
		ltI := b.node(fmt.Sprintf("lt%d", i), fmt.Sprintf("!%s*%s", a, bb), a, bb)
		gtI := b.node(fmt.Sprintf("gt%d", i), fmt.Sprintf("%s*!%s", a, bb), a, bb)
		if eq == "" {
			eq, lt, gt = eqI, ltI, gtI
			continue
		}
		lt = b.node(fmt.Sprintf("ltacc%d", i), fmt.Sprintf("%s+%s*%s", lt, eq, ltI), lt, eq, ltI)
		gt = b.node(fmt.Sprintf("gtacc%d", i), fmt.Sprintf("%s+%s*%s", gt, eq, gtI), gt, eq, gtI)
		eq = b.node(fmt.Sprintf("eqacc%d", i), fmt.Sprintf("%s*%s", eq, eqI), eq, eqI)
	}
	b.out(b.node("lt", lt, lt))
	b.out(b.node("eq", eq, eq))
	b.out(b.node("gt", gt, gt))
	return b.done()
}

// ParityTree builds an n-input XOR tree with output "par".
func ParityTree(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("par%d", n))
	var cur []string
	for i := 0; i < n; i++ {
		cur = append(cur, b.in(bit("x", i)))
	}
	level := 0
	for len(cur) > 1 {
		var next []string
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.node(fmt.Sprintf("t%d_%d", level, i/2),
				fmt.Sprintf("%s^%s", cur[i], cur[i+1]), cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
		level++
	}
	b.out(b.node("par", cur[0], cur[0]))
	return b.done()
}

// MuxTree builds a 2^k-to-1 multiplexer: data d0.., selects s0..,
// output "y".
func MuxTree(k int) *network.Network {
	b := newBuilder(fmt.Sprintf("mux%d", 1<<k))
	var cur []string
	for i := 0; i < 1<<k; i++ {
		cur = append(cur, b.in(bit("d", i)))
	}
	var sels []string
	for i := 0; i < k; i++ {
		sels = append(sels, b.in(bit("s", i)))
	}
	for lvl := 0; lvl < k; lvl++ {
		s := sels[lvl]
		var next []string
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, b.node(fmt.Sprintf("m%d_%d", lvl, i/2),
				fmt.Sprintf("!%s*%s+%s*%s", s, cur[i], s, cur[i+1]), s, cur[i], cur[i+1]))
		}
		cur = next
	}
	b.out(b.node("y", cur[0], cur[0]))
	return b.done()
}

// Decoder builds an n-to-2^n decoder with enable: outputs y0..y(2^n-1).
func Decoder(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("dec%d", n))
	var addr []string
	for i := 0; i < n; i++ {
		addr = append(addr, b.in(bit("a", i)))
	}
	en := b.in("en")
	for v := 0; v < 1<<n; v++ {
		terms := en
		fanins := []string{en}
		for i := 0; i < n; i++ {
			lit := addr[i]
			if v>>uint(i)&1 == 0 {
				lit = "!" + lit
			}
			terms += "*" + lit
			fanins = append(fanins, addr[i])
		}
		b.out(b.node(bit("y", v), terms, fanins...))
	}
	return b.done()
}

// PriorityEncoder builds an n-input priority encoder: the highest
// asserted request wins; outputs the binary index plus "valid".
func PriorityEncoder(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("prio%d", n))
	var req []string
	for i := 0; i < n; i++ {
		req = append(req, b.in(bit("r", i)))
	}
	// grant[i] = r[i] & !r[i+1] & ... & !r[n-1]
	higherOff := ""
	grants := make([]string, n)
	for i := n - 1; i >= 0; i-- {
		if higherOff == "" {
			grants[i] = req[i]
			higherOff = b.node(fmt.Sprintf("off%d", i), "!"+req[i], req[i])
			continue
		}
		grants[i] = b.node(fmt.Sprintf("g%d", i),
			fmt.Sprintf("%s*%s", req[i], higherOff), req[i], higherOff)
		if i > 0 {
			higherOff = b.node(fmt.Sprintf("off%d", i),
				fmt.Sprintf("%s*!%s", higherOff, req[i]), higherOff, req[i])
		}
	}
	bits := 0
	for 1<<bits < n {
		bits++
	}
	for k := 0; k < bits; k++ {
		var ors []string
		for i := 0; i < n; i++ {
			if i>>uint(k)&1 == 1 {
				ors = append(ors, grants[i])
			}
		}
		expr := ""
		for i, o := range ors {
			if i > 0 {
				expr += "+"
			}
			expr += o
		}
		b.out(b.node(bit("idx", k), expr, ors...))
	}
	vexpr := ""
	for i, r := range req {
		if i > 0 {
			vexpr += "+"
		}
		vexpr += r
	}
	b.out(b.node("valid", vexpr, req...))
	return b.done()
}

// ALU builds an n-bit ALU with a 2-bit opcode:
// 00 add, 01 and, 10 or, 11 xor. Outputs y0.. and carry-out "cy".
func ALU(n int) *network.Network {
	b := newBuilder(fmt.Sprintf("alu%d", n))
	for i := 0; i < n; i++ {
		b.in(bit("a", i))
	}
	for i := 0; i < n; i++ {
		b.in(bit("b", i))
	}
	op0 := b.in("op0")
	op1 := b.in("op1")
	carry := ""
	for i := 0; i < n; i++ {
		a, bb := bit("a", i), bit("b", i)
		var s string
		if carry == "" {
			s = b.node(fmt.Sprintf("add%d", i), fmt.Sprintf("%s^%s", a, bb), a, bb)
			carry = b.node(fmt.Sprintf("cc%d", i), fmt.Sprintf("%s*%s", a, bb), a, bb)
		} else {
			s = b.node(fmt.Sprintf("add%d", i), fmt.Sprintf("%s^%s^%s", a, bb, carry), a, bb, carry)
			carry = b.node(fmt.Sprintf("cc%d", i),
				fmt.Sprintf("%s*%s+%s*%s+%s*%s", a, bb, a, carry, bb, carry), a, bb, carry)
		}
		andv := b.node(fmt.Sprintf("and%d", i), fmt.Sprintf("%s*%s", a, bb), a, bb)
		orv := b.node(fmt.Sprintf("or%d", i), fmt.Sprintf("%s+%s", a, bb), a, bb)
		xorv := b.node(fmt.Sprintf("xor%d", i), fmt.Sprintf("%s^%s", a, bb), a, bb)
		y := b.node(bit("y", i),
			fmt.Sprintf("!%s*!%s*%s + !%s*%s*%s + %s*!%s*%s + %s*%s*%s",
				op1, op0, s,
				op1, op0, andv,
				op1, op0, orv,
				op1, op0, xorv),
			op1, op0, s, andv, orv, xorv)
		b.out(y)
	}
	b.out(b.node("cy", carry, carry))
	return b.done()
}

// hammingParityBits returns the number of check bits for d data bits.
func hammingParityBits(d int) int {
	p := 0
	for (1 << p) < d+p+1 {
		p++
	}
	return p
}

// HammingEncoder builds a single-error-correcting Hamming encoder for
// d data bits: inputs d0..; outputs the codeword bits c1..cN
// (positions 1..N, powers of two are check bits).
func HammingEncoder(d int) *network.Network {
	b := newBuilder(fmt.Sprintf("henc%d", d))
	p := hammingParityBits(d)
	n := d + p
	// Assign data bits to non-power-of-two positions.
	dataAt := map[int]string{}
	next := 0
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) == 0 {
			continue
		}
		dataAt[pos] = b.in(bit("d", next))
		next++
	}
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) != 0 {
			b.out(b.node(fmt.Sprintf("c%d", pos), dataAt[pos], dataAt[pos]))
			continue
		}
		// Check bit: parity of covered data positions.
		var terms []string
		for dp, name := range dataAt {
			if dp&pos != 0 {
				terms = append(terms, name)
			}
		}
		sortStrings(terms)
		expr := terms[0]
		for _, t := range terms[1:] {
			expr += "^" + t
		}
		b.out(b.node(fmt.Sprintf("c%d", pos), expr, terms...))
	}
	return b.done()
}

// HammingDecoder builds the matching single-error corrector: inputs
// c1..cN (possibly with one flipped bit), outputs the corrected data
// bits d0.. — the C499/C1355 function class.
func HammingDecoder(d int) *network.Network {
	b := newBuilder(fmt.Sprintf("hdec%d", d))
	p := hammingParityBits(d)
	n := d + p
	for pos := 1; pos <= n; pos++ {
		b.in(fmt.Sprintf("c%d", pos))
	}
	// Syndrome bits.
	var syn []string
	for k := 0; k < p; k++ {
		mask := 1 << k
		var terms []string
		for pos := 1; pos <= n; pos++ {
			if pos&mask != 0 {
				terms = append(terms, fmt.Sprintf("c%d", pos))
			}
		}
		expr := terms[0]
		for _, t := range terms[1:] {
			expr += "^" + t
		}
		syn = append(syn, b.node(fmt.Sprintf("syn%d", k), expr, terms...))
	}
	// Correct each data position: flip when syndrome == position.
	next := 0
	for pos := 1; pos <= n; pos++ {
		if pos&(pos-1) == 0 {
			continue
		}
		var fanins []string
		expr := ""
		for k := 0; k < p; k++ {
			lit := syn[k]
			if pos>>uint(k)&1 == 0 {
				lit = "!" + lit
			}
			if k > 0 {
				expr += "*"
			}
			expr += lit
			fanins = append(fanins, syn[k])
		}
		hit := b.node(fmt.Sprintf("hit%d", pos), expr, fanins...)
		c := fmt.Sprintf("c%d", pos)
		b.out(b.node(bit("d", next), fmt.Sprintf("%s^%s", c, hit), c, hit))
		next++
	}
	return b.done()
}

// RandomDAG builds a reproducible random circuit with the given
// inputs, gates and seed; roughly half the terminal nodes become
// outputs.
func RandomDAG(nIn, nGates int, seed int64) *network.Network {
	b := newBuilder(fmt.Sprintf("rnd%d_%d_%d", nIn, nGates, seed))
	rng := newXorshift(seed)
	var names []string
	for i := 0; i < nIn; i++ {
		names = append(names, b.in(bit("x", i)))
	}
	used := make(map[string]bool)
	for g := 0; g < nGates; g++ {
		k := 1 + int(rng.next()%3)
		if k > len(names) {
			k = len(names)
		}
		var fanins []string
		seen := map[string]bool{}
		for len(fanins) < k {
			// Mild bias toward recent nodes: deep enough to be
			// interesting, shallow enough to match real control
			// logic (a window of 12 produced ISCAS-unlike depths).
			window := minInt(len(names), 64)
			idx := len(names) - 1 - int(rng.next()%uint64(window))
			f := names[idx]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
				used[f] = true
			}
		}
		var expr string
		switch rng.next() % 5 {
		case 0:
			expr = "!(" + joinOp(fanins, "*") + ")"
		case 1:
			expr = joinOp(fanins, "+")
		case 2:
			expr = joinOp(fanins, "^")
		case 3:
			expr = joinOp(fanins, "*")
		default:
			expr = "!(" + joinOp(fanins, "+") + ")"
		}
		names = append(names, b.node(fmt.Sprintf("n%d", g), expr, fanins...))
	}
	outs := 0
	for i := len(names) - 1; i >= nIn && outs < maxInt(1, nGates/8); i-- {
		if !used[names[i]] {
			b.out(names[i])
			outs++
		}
	}
	if outs == 0 {
		b.out(names[len(names)-1])
	}
	return b.done()
}

func joinOp(xs []string, op string) string {
	out := xs[0]
	for _, x := range xs[1:] {
		out += op + x
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// xorshift is a tiny deterministic PRNG so generated circuits never
// depend on math/rand's version-specific stream.
type xorshift struct{ s uint64 }

func newXorshift(seed int64) *xorshift {
	x := uint64(seed)*2685821657736338717 + 1442695040888963407
	return &xorshift{s: x}
}

func (x *xorshift) next() uint64 {
	x.s ^= x.s << 13
	x.s ^= x.s >> 7
	x.s ^= x.s << 17
	return x.s
}
