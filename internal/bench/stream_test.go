package bench

import (
	"bytes"
	"strings"
	"testing"

	"dagcover/internal/blif"
	"dagcover/internal/network"
	"dagcover/internal/verify"
)

func parseStream(t *testing.T, gen func(w *bytes.Buffer)) *network.Network {
	t.Helper()
	var buf bytes.Buffer
	gen(&buf)
	nw, err := blif.ParseString(buf.String())
	if err != nil {
		t.Fatalf("parse streamed BLIF: %v", err)
	}
	if err := nw.Check(); err != nil {
		t.Fatalf("streamed network invalid: %v", err)
	}
	return nw
}

func TestStreamMultMatchesArrayMultiplier(t *testing.T) {
	for _, n := range []int{1, 2, 4, 7} {
		nw := parseStream(t, func(buf *bytes.Buffer) {
			if err := StreamMult(buf, n); err != nil {
				t.Fatalf("StreamMult(%d): %v", n, err)
			}
		})
		if err := verify.Networks(ArrayMultiplier(n), nw, verify.Options{}); err != nil {
			t.Fatalf("mult%d: streamed multiplier differs from ArrayMultiplier: %v", n, err)
		}
	}
}

func TestStreamALUMeshSemantics(t *testing.T) {
	nw := parseStream(t, func(buf *bytes.Buffer) {
		if err := StreamALUMesh(buf, 1, 1); err != nil {
			t.Fatalf("StreamALUMesh: %v", err)
		}
	})
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	// One tile: east = mux(op, w+n, w&n, w|n, w^n) bitwise over 4-bit
	// vectors; south = (w^n) ^ carry-after-bit.
	for _, tc := range []struct{ w, n, op uint64 }{
		{0b1010, 0b0110, 0}, {0b1111, 0b0001, 0}, {0b1010, 0b0110, 1},
		{0b1010, 0b0110, 2}, {0b1010, 0b0110, 3}, {0b1111, 0b1111, 0},
	} {
		in := map[string]uint64{"op0": tc.op & 1, "op1": tc.op >> 1}
		for b := 0; b < 4; b++ {
			in[bit("w0_", b)] = (tc.w >> b) & 1
			in[bit("n0_", b)] = (tc.n >> b) & 1
		}
		// Lanes are packed 64-wide; single-bit values broadcast fine
		// because we only read bit 0 of each output below.
		out, err := sim.RunOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		sum := (tc.w + tc.n) & 0xf
		var want uint64
		switch tc.op {
		case 0:
			want = sum
		case 1:
			want = tc.w & tc.n
		case 2:
			want = tc.w | tc.n
		case 3:
			want = tc.w ^ tc.n
		}
		var got uint64
		for b := 0; b < 4; b++ {
			got |= (out[bit("e0_", b)] & 1) << b
		}
		if got != want {
			t.Errorf("op=%d w=%04b n=%04b: east=%04b want %04b", tc.op, tc.w, tc.n, got, want)
		}
		// south[b] = (w^n)[b] ^ carry_after_bit_b of the w+n ripple.
		carry := uint64(0)
		var wantSouth uint64
		for b := 0; b < 4; b++ {
			wb, nb := (tc.w>>b)&1, (tc.n>>b)&1
			carry = (wb & nb) | (wb & carry) | (nb & carry)
			wantSouth |= ((wb ^ nb) ^ carry) << b
		}
		var gotSouth uint64
		for b := 0; b < 4; b++ {
			gotSouth |= (out[bit("s0_", b)] & 1) << b
		}
		if gotSouth != wantSouth {
			t.Errorf("op=%d w=%04b n=%04b: south=%04b want %04b", tc.op, tc.w, tc.n, gotSouth, wantSouth)
		}
	}
}

func TestStreamALUMeshShape(t *testing.T) {
	nw := parseStream(t, func(buf *bytes.Buffer) {
		if err := StreamALUMesh(buf, 3, 2); err != nil {
			t.Fatalf("StreamALUMesh: %v", err)
		}
	})
	if got, want := len(nw.Inputs()), 2+2*4+3*4; got != want {
		t.Errorf("alumesh3x2 inputs = %d, want %d", got, want)
	}
	if got, want := len(nw.Outputs()), 2*4+3*4; got != want {
		t.Errorf("alumesh3x2 outputs = %d, want %d", got, want)
	}
}

func TestStreamFamily(t *testing.T) {
	for _, name := range []string{"mult2", "mult256", "alumesh1x1", "alumesh64x64"} {
		if _, ok := StreamFamily(name); !ok {
			t.Errorf("StreamFamily(%q) not recognized", name)
		}
	}
	for _, name := range []string{"mult", "mult0", "c432", "alumesh4", "alumesh0x4", "multx", "alumesh4x"} {
		if _, ok := StreamFamily(name); ok {
			t.Errorf("StreamFamily(%q) unexpectedly recognized", name)
		}
	}
	gen, _ := StreamFamily("mult2")
	var a, b bytes.Buffer
	if err := gen(&a); err != nil {
		t.Fatal(err)
	}
	if err := gen(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("StreamFamily generator is not deterministic")
	}
	if !strings.HasPrefix(a.String(), ".model mult2\n") {
		t.Errorf("unexpected BLIF header: %q", a.String()[:20])
	}
}
