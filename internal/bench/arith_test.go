package bench

import (
	"math/rand"
	"testing"
)

func TestKoggeStoneAdder(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, n := range []int{1, 2, 8, 16, 32} {
		nw := KoggeStoneAdder(n)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 3 {
			a := inputWord(in, "a", n, lane)
			b := inputWord(in, "b", n, lane)
			cin := in["cin"] >> uint(lane) & 1
			want := a + b + cin
			got := l.word("s", n, lane) | l.vals["cout"]>>uint(lane)&1<<uint(n)
			if got != want {
				t.Fatalf("n=%d lane %d: %d+%d+%d = %d, got %d", n, lane, a, b, cin, want, got)
			}
		}
	}
}

func TestKoggeStoneShallowerThanRipple(t *testing.T) {
	const n = 32
	ks, err := KoggeStoneAdder(n).Stats()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := RippleAdder(n).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ks.Depth >= rp.Depth {
		t.Errorf("Kogge-Stone depth %d not below ripple depth %d", ks.Depth, rp.Depth)
	}
}

func TestWallaceMultiplier(t *testing.T) {
	rng := rand.New(rand.NewSource(403))
	for _, n := range []int{1, 2, 4, 8, 12} {
		nw := WallaceMultiplier(n)
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 5 {
			a := inputWord(in, "a", n, lane)
			b := inputWord(in, "b", n, lane)
			want := a * b
			got := l.word("p", 2*n, lane)
			if got != want {
				t.Fatalf("n=%d lane %d: %d*%d = %d, got %d", n, lane, a, b, want, got)
			}
		}
	}
}

func TestWallaceShallowerThanArray(t *testing.T) {
	const n = 12
	w, err := WallaceMultiplier(n).Stats()
	if err != nil {
		t.Fatal(err)
	}
	a, err := ArrayMultiplier(n).Stats()
	if err != nil {
		t.Fatal(err)
	}
	if w.Depth >= a.Depth {
		t.Errorf("Wallace depth %d not below array depth %d", w.Depth, a.Depth)
	}
}

func TestBarrelShifter(t *testing.T) {
	rng := rand.New(rand.NewSource(405))
	for _, n := range []int{2, 8, 16} {
		nw := BarrelShifter(n)
		bits := 0
		for 1<<bits < n {
			bits++
		}
		l, in := runLanes(t, nw, rng)
		for lane := 0; lane < 64; lane += 7 {
			d := inputWord(in, "d", n, lane)
			s := int(inputWord(in, "s", bits, lane))
			want := d << uint(s) & (1<<uint(n) - 1)
			got := l.word("y", n, lane)
			if got != want {
				t.Fatalf("n=%d lane %d: %d<<%d = %d, got %d", n, lane, d, s, want, got)
			}
		}
	}
}

func TestBarrelShifterRejectsNonPowerOfTwo(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two width accepted")
		}
	}()
	BarrelShifter(6)
}
