// Streaming BLIF ingest: a line-at-a-time reader that folds flat
// models straight into a subject graph without materializing the
// logical-line list or the proto-model AST. This is the path the
// million-gate benchmark families take — a network.Network of several
// million nodes costs an order of magnitude more memory than the
// subject graph it decomposes into, so the big families never build
// one.
//
// The streaming path handles the single-model combinational subset of
// BLIF (.model/.inputs/.outputs/.names/.gate/.end, comments,
// continuations) with declarations in topological order. Anything
// outside that subset — .subckt hierarchies, .latch, multiple models,
// forward references — makes StreamSubject return ErrNeedsAST, and
// ReadSubjectFile transparently re-reads the file through the full
// parser.
package blif

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"strings"

	"dagcover/internal/logic"
	"dagcover/internal/subject"
)

// ErrNeedsAST reports that the model uses BLIF constructs outside the
// streaming subset (hierarchy, latches, several models, or forward
// references) and must go through the full AST parser.
var ErrNeedsAST = errors.New("blif: model needs the AST reader")

// maxLogicalLine bounds one logical line (after continuation
// joining). Continuations concatenate physical lines into one buffer;
// without a bound, adversarial input ending every line in '\' makes
// the reader buffer the entire file.
const maxLogicalLine = 1 << 24

// lineScanner produces logical lines one at a time: comments are
// stripped, '\' continuations are joined into a bounded buffer, and a
// continuation that runs into end of file is a position-accurate
// error instead of a silently accepted line.
type lineScanner struct {
	sc      *bufio.Scanner
	num     int // physical line number of the last line read
	buf     strings.Builder
	err     error
	started bool
}

func newLineScanner(r io.Reader) *lineScanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &lineScanner{sc: sc}
}

// next returns the next logical line. ok is false at end of input or
// on error; check Err afterwards.
func (ls *lineScanner) next() (ln line, ok bool) {
	if ls.err != nil {
		return line{}, false
	}
	ls.buf.Reset()
	startNum := 0
	pending := false // inside a continuation run
	for ls.sc.Scan() {
		ls.num++
		txt := ls.sc.Text()
		if idx := strings.IndexByte(txt, '#'); idx >= 0 {
			txt = txt[:idx]
		}
		cont := strings.HasSuffix(txt, "\\")
		if cont {
			txt = txt[:len(txt)-1]
		}
		if !pending {
			startNum = ls.num
		}
		if ls.buf.Len()+len(txt) > maxLogicalLine {
			ls.err = fmt.Errorf("blif: line %d: logical line exceeds %d bytes", startNum, maxLogicalLine)
			return line{}, false
		}
		ls.buf.WriteString(txt)
		if cont {
			ls.buf.WriteByte(' ')
			pending = true
			continue
		}
		return line{num: startNum, text: ls.buf.String()}, true
	}
	if err := ls.sc.Err(); err != nil {
		ls.err = fmt.Errorf("blif: %v", err)
		return line{}, false
	}
	if pending {
		ls.err = fmt.Errorf("blif: line %d: line continuation ('\\') at end of file", ls.num)
		return line{}, false
	}
	if ls.buf.Len() > 0 {
		// Final line without a newline.
		return line{num: startNum, text: ls.buf.String()}, true
	}
	return line{}, false
}

// Err returns the first scan error, if any.
func (ls *lineScanner) Err() error { return ls.err }

// StreamSubject reads one flat BLIF model from r and technology-
// decomposes it into a subject graph on the fly, one declaration at a
// time. The result is structurally identical to
// Parse + subject.FromNetwork (same node/strash counts, same PI order,
// same output bindings); only the internal node numbering may differ,
// because the AST path renumbers through a topological sort.
//
// Models outside the streaming subset return ErrNeedsAST (wrapped);
// use ReadSubjectFile for transparent fallback.
func (rd *Reader) StreamSubject(r io.Reader) (*subject.Graph, error) {
	ls := newLineScanner(r)
	g := subject.NewGraph("top", true)
	sigOf := map[string]subject.Node{}
	constOf := map[string]*logic.Expr{}
	env := map[string]subject.Node{}
	var outputs []string
	sawModel, sawContent, ended := false, false, false

	// One .names declaration is pending while its cover rows stream in.
	var pend *nodeDecl
	var pendCover []string

	buildDecl := func(nd *nodeDecl) error {
		if _, dup := sigOf[nd.output]; dup {
			return nd.ln.errorf("signal %q driven twice or collides with an input", nd.output)
		}
		if _, dup := constOf[nd.output]; dup {
			return nd.ln.errorf("signal %q driven twice or collides with an input", nd.output)
		}
		// Mirror subject.FromNetwork: substitute constant fanins in
		// fanin order, then simplify through the folding constructors.
		fn := nd.fn
		for _, in := range nd.inputs {
			if c, isConst := constOf[in]; isConst {
				fn = substituteVar(fn, in, c)
			}
		}
		fn = foldExpr(fn)
		if fn.Op == logic.OpConst {
			constOf[nd.output] = fn
			return nil
		}
		clear(env)
		for _, in := range nd.inputs {
			if sn, ok := sigOf[in]; ok {
				env[in] = sn
			} else if _, isConst := constOf[in]; !isConst {
				// Used before defined: the streaming pass cannot
				// decompose out of order.
				return fmt.Errorf("%w: line %d: signal %q used before its definition", ErrNeedsAST, nd.ln.num, in)
			}
		}
		sn, err := g.Build(fn, env)
		if err != nil {
			return nd.ln.errorf("%v", err)
		}
		sigOf[nd.output] = sn
		return nil
	}
	flushPending := func() error {
		if pend == nil {
			return nil
		}
		nd, cover := pend, pendCover
		pend, pendCover = nil, nil
		fn, err := coverToExpr(nd.inputs, cover)
		if err != nil {
			return nd.ln.errorf("%v", err)
		}
		nd.fn = fn
		return buildDecl(nd)
	}

	for {
		ln, ok := ls.next()
		if !ok {
			break
		}
		fields := strings.Fields(ln.text)
		if len(fields) == 0 {
			continue
		}
		if !strings.HasPrefix(fields[0], ".") {
			// A cover row of the pending .names.
			if pend == nil {
				return nil, ln.errorf("unexpected token %q", fields[0])
			}
			pendCover = append(pendCover, strings.TrimSpace(ln.text))
			continue
		}
		if err := flushPending(); err != nil {
			return nil, err
		}
		if ended && fields[0] != ".end" {
			return nil, fmt.Errorf("%w: line %d: content after .end", ErrNeedsAST, ln.num)
		}
		switch fields[0] {
		case ".model":
			if sawModel || sawContent {
				return nil, fmt.Errorf("%w: line %d: multiple models", ErrNeedsAST, ln.num)
			}
			sawModel = true
			if len(fields) > 1 {
				g.Name = fields[1]
			}
			continue
		case ".inputs":
			for _, name := range fields[1:] {
				pi, err := g.AddPI(name)
				if err != nil {
					return nil, ln.errorf("%v", err)
				}
				sigOf[name] = pi
			}
		case ".outputs":
			outputs = append(outputs, fields[1:]...)
		case ".names":
			if len(fields) < 2 {
				return nil, ln.errorf(".names needs at least an output")
			}
			pend = &nodeDecl{
				inputs: fields[1 : len(fields)-1],
				output: fields[len(fields)-1],
				ln:     ln,
			}
			pendCover = pendCover[:0]
		case ".gate":
			if rd.Gates == nil {
				return nil, ln.errorf(".gate requires a gate resolver (library)")
			}
			nd, err := rd.gateDecl(fields[1:], ln)
			if err != nil {
				return nil, err
			}
			if err := buildDecl(&nd); err != nil {
				return nil, err
			}
		case ".end":
			ended = true
		case ".latch", ".subckt", ".exdc":
			return nil, fmt.Errorf("%w: line %d: %s", ErrNeedsAST, ln.num, fields[0])
		default:
			// Unsupported directives (timing etc.) are skipped, as in
			// the AST parser.
		}
		sawContent = true
	}
	if err := ls.Err(); err != nil {
		return nil, err
	}
	if err := flushPending(); err != nil {
		return nil, err
	}
	if !sawModel && !sawContent {
		return nil, fmt.Errorf("blif: no model found")
	}
	if len(outputs) == 0 {
		return nil, fmt.Errorf("blif: model %q declares no outputs and no latches", g.Name)
	}
	for _, name := range outputs {
		sn, ok := sigOf[name]
		if !ok {
			if _, isConst := constOf[name]; isConst {
				return nil, fmt.Errorf("blif: primary output %q is constant; constant outputs cannot be mapped", name)
			}
			return nil, fmt.Errorf("blif: output %q is never defined", name)
		}
		g.MarkOutput(name, sn)
	}
	return g, nil
}

// ReadSubjectFile reads the BLIF file at path into a subject graph.
// Flat models take the streaming path; hierarchical or out-of-order
// models are transparently re-read through the AST parser and
// subject.FromNetwork.
func (rd *Reader) ReadSubjectFile(path string) (*subject.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, serr := rd.StreamSubject(bufio.NewReaderSize(f, 1<<20))
	if serr == nil {
		return g, nil
	}
	if !errors.Is(serr, ErrNeedsAST) {
		return nil, serr
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, fmt.Errorf("blif: rewind for AST fallback: %v", err)
	}
	nw, err := rd.Parse(bufio.NewReaderSize(f, 1<<20))
	if err != nil {
		return nil, err
	}
	return subject.FromNetwork(nw)
}

// substituteVar replaces variable v with expression rep in e,
// mirroring the constant propagation of subject.FromNetwork.
func substituteVar(e *logic.Expr, v string, rep *logic.Expr) *logic.Expr {
	if e.Op == logic.OpVar {
		if e.Var == v {
			return rep.Clone()
		}
		return e
	}
	c := &logic.Expr{Op: e.Op, Var: e.Var, Const: e.Const}
	c.Kids = make([]*logic.Expr, len(e.Kids))
	for i, k := range e.Kids {
		c.Kids[i] = substituteVar(k, v, rep)
	}
	return c
}

// foldExpr rebuilds e through the folding constructors, propagating
// constants — the same normalization subject.FromNetwork applies
// before decomposition, so streamed and AST-built graphs decompose
// identical expressions.
func foldExpr(e *logic.Expr) *logic.Expr {
	switch e.Op {
	case logic.OpConst, logic.OpVar:
		return e
	case logic.OpNot:
		return logic.Not(foldExpr(e.Kids[0]))
	case logic.OpAnd, logic.OpOr, logic.OpXor:
		kids := make([]*logic.Expr, len(e.Kids))
		for i, k := range e.Kids {
			kids[i] = foldExpr(k)
		}
		switch e.Op {
		case logic.OpAnd:
			return logic.And(kids...)
		case logic.OpOr:
			return logic.Or(kids...)
		default:
			return logic.Xor(kids...)
		}
	}
	return e
}
