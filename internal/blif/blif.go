// Package blif reads and writes Boolean networks in the Berkeley Logic
// Interchange Format (BLIF).
//
// Supported constructs: .model, .inputs, .outputs, .names (PLA-style
// single-output covers), .latch (edge-triggered, initial value), .gate
// (library cells, via an optional GateResolver), .end, comments (#)
// and line continuations (\). Unsupported timing directives such as
// .default_input_arrival are skipped with no error.
package blif

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
	"unicode/utf8"

	"dagcover/internal/logic"
	"dagcover/internal/network"
)

// GateResolver resolves a .gate cell name to its single-output logic
// function and the ordered formal pin names of that function. It is
// typically a genlib library.
type GateResolver interface {
	GateFunc(name string) (fn *logic.Expr, formals []string, ok bool)
}

// Reader parses BLIF input.
type Reader struct {
	// Gates resolves .gate constructs; if nil, .gate is an error.
	Gates GateResolver
}

// Parse reads one BLIF model from r.
// nodeDecl is one logic-node declaration (.names or .gate) with the
// function expressed over its input signal names.
type nodeDecl struct {
	output string
	inputs []string
	fn     *logic.Expr
	ln     line
}

type latchDecl struct {
	in, out string
	init    bool
	ln      line
}

type subcktDecl struct {
	model string
	bind  map[string]string // formal -> actual
	ln    line
}

// protoModel is a parsed-but-unbuilt BLIF model.
type protoModel struct {
	name    string
	inputs  []string
	outputs []string
	nodes   []nodeDecl
	latches []latchDecl
	subckts []subcktDecl
	ln      line
}

// Parse reads a BLIF file. The first .model is the main model;
// further models may be instantiated through .subckt and are
// flattened into the result. Signals may be used before they are
// defined (forward references), as the BLIF format allows.
func (rd *Reader) Parse(r io.Reader) (*network.Network, error) {
	lines, err := logicalLines(r)
	if err != nil {
		return nil, err
	}
	protos, err := rd.parseModels(lines)
	if err != nil {
		return nil, err
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("blif: no model found")
	}
	byName := map[string]*protoModel{}
	for _, p := range protos {
		if _, dup := byName[p.name]; dup {
			return nil, p.ln.errorf("duplicate model %q", p.name)
		}
		byName[p.name] = p
	}
	main := protos[0]

	// Flatten the hierarchy into global declaration lists.
	var nodes []nodeDecl
	var latches []latchDecl
	instCtr := 0
	var instantiate func(p *protoModel, prefix string, bind map[string]string, stack []string) error
	instantiate = func(p *protoModel, prefix string, bind map[string]string, stack []string) error {
		for _, s := range stack {
			if s == p.name {
				return p.ln.errorf("recursive model instantiation of %q", p.name)
			}
		}
		stack = append(stack, p.name)
		resolve := func(s string) string {
			if a, ok := bind[s]; ok {
				return a
			}
			return prefix + s
		}
		for _, nd := range p.nodes {
			rn := nodeDecl{output: resolve(nd.output), ln: nd.ln}
			ren := map[string]string{}
			seen := map[string]bool{}
			for _, in := range nd.inputs {
				a := resolve(in)
				ren[in] = a
				if !seen[a] {
					seen[a] = true
					rn.inputs = append(rn.inputs, a)
				}
			}
			rn.fn = nd.fn.Rename(ren)
			nodes = append(nodes, rn)
		}
		for _, ld := range p.latches {
			latches = append(latches, latchDecl{
				in: resolve(ld.in), out: resolve(ld.out), init: ld.init, ln: ld.ln,
			})
		}
		for _, sc := range p.subckts {
			child, ok := byName[sc.model]
			if !ok {
				return sc.ln.errorf(".subckt references unknown model %q", sc.model)
			}
			formals := map[string]bool{}
			for _, in := range child.inputs {
				formals[in] = true
			}
			for _, out := range child.outputs {
				formals[out] = true
			}
			childBind := map[string]string{}
			for formal, actual := range sc.bind {
				if !formals[formal] {
					return sc.ln.errorf(".subckt %s: %q is not an interface pin", sc.model, formal)
				}
				childBind[formal] = resolve(actual)
			}
			for _, in := range child.inputs {
				if _, ok := childBind[in]; !ok {
					return sc.ln.errorf(".subckt %s: input %q unbound", sc.model, in)
				}
			}
			instCtr++
			childPrefix := fmt.Sprintf("%s%s$%d/", prefix, sc.model, instCtr)
			if err := instantiate(child, childPrefix, childBind, stack); err != nil {
				return err
			}
		}
		return nil
	}
	if err := instantiate(main, "", map[string]string{}, nil); err != nil {
		return nil, err
	}

	// Build the network in dependency order.
	nw := network.New(main.name)
	for _, in := range main.inputs {
		if _, err := nw.AddInput(in); err != nil {
			return nil, fmt.Errorf("blif: %s", clipErr(err.Error()))
		}
	}
	for _, ld := range latches {
		if _, err := nw.AddLatchOutput(ld.out); err != nil {
			return nil, ld.ln.errorf("%v", err)
		}
	}
	driver := map[string]*nodeDecl{}
	for i := range nodes {
		nd := &nodes[i]
		if prev, dup := driver[nd.output]; dup {
			return nil, nd.ln.errorf("signal %q driven twice (also line %d)", nd.output, prev.ln.num)
		}
		if nw.Node(nd.output) != nil {
			return nil, nd.ln.errorf("signal %q collides with an input or latch output", nd.output)
		}
		driver[nd.output] = nd
	}
	state := map[string]int{} // 0 new, 1 visiting, 2 done
	var emit func(nd *nodeDecl) error
	emit = func(nd *nodeDecl) error {
		switch state[nd.output] {
		case 1:
			return nd.ln.errorf("combinational cycle through %q", nd.output)
		case 2:
			return nil
		}
		state[nd.output] = 1
		for _, in := range nd.inputs {
			if nw.Node(in) != nil {
				continue
			}
			d, ok := driver[in]
			if !ok {
				return nd.ln.errorf("signal %q is never defined", in)
			}
			if err := emit(d); err != nil {
				return err
			}
		}
		state[nd.output] = 2
		_, err := nw.AddNode(nd.output, nd.inputs, nd.fn)
		if err != nil {
			return nd.ln.errorf("%v", err)
		}
		return nil
	}
	for i := range nodes {
		if err := emit(&nodes[i]); err != nil {
			return nil, err
		}
	}
	for _, ld := range latches {
		if _, err := nw.ConnectLatch(ld.in, ld.out, ld.init); err != nil {
			return nil, ld.ln.errorf("%v", err)
		}
	}
	for _, o := range main.outputs {
		if err := nw.MarkOutput(o); err != nil {
			return nil, fmt.Errorf("blif: %s", clipErr(err.Error()))
		}
	}
	if len(nw.Outputs()) == 0 && len(nw.Latches()) == 0 {
		return nil, fmt.Errorf("blif: model %q declares no outputs and no latches", nw.Name)
	}
	return nw, nil
}

// parseModels splits the logical lines into proto models.
func (rd *Reader) parseModels(lines []line) ([]*protoModel, error) {
	var protos []*protoModel
	var cur *protoModel
	need := func(ln line) (*protoModel, error) {
		if cur == nil {
			cur = &protoModel{name: "top", ln: ln}
			protos = append(protos, cur)
		}
		return cur, nil
	}
	i := 0
	for i < len(lines) {
		ln := lines[i]
		fields := strings.Fields(ln.text)
		if len(fields) == 0 {
			i++
			continue
		}
		switch fields[0] {
		case ".model":
			name := "top"
			if len(fields) > 1 {
				name = fields[1]
			}
			cur = &protoModel{name: name, ln: ln}
			protos = append(protos, cur)
			i++
		case ".inputs":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			p.inputs = append(p.inputs, fields[1:]...)
			i++
		case ".outputs":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			p.outputs = append(p.outputs, fields[1:]...)
			i++
		case ".names":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			if len(fields) < 2 {
				return nil, ln.errorf(".names needs at least an output")
			}
			inputs := fields[1 : len(fields)-1]
			output := fields[len(fields)-1]
			var cover []string
			i++
			for i < len(lines) && !strings.HasPrefix(strings.TrimSpace(lines[i].text), ".") {
				row := strings.TrimSpace(lines[i].text)
				if row != "" {
					cover = append(cover, row)
				}
				i++
			}
			fn, err := coverToExpr(inputs, cover)
			if err != nil {
				return nil, ln.errorf("%v", err)
			}
			p.nodes = append(p.nodes, nodeDecl{output: output, inputs: inputs, fn: fn, ln: ln})
		case ".latch":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			if len(fields) < 3 {
				return nil, ln.errorf(".latch needs input and output")
			}
			init := false
			if last := fields[len(fields)-1]; len(fields) > 3 {
				switch last {
				case "1":
					init = true
				case "0", "2", "3": // 2=don't care, 3=unknown: treat as 0
				default:
					// trailing token was a clock name; init defaults 0
				}
			}
			p.latches = append(p.latches, latchDecl{in: fields[1], out: fields[2], init: init, ln: ln})
			i++
		case ".gate":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			if rd.Gates == nil {
				return nil, ln.errorf(".gate requires a gate resolver (library)")
			}
			nd, err := rd.gateDecl(fields[1:], ln)
			if err != nil {
				return nil, err
			}
			p.nodes = append(p.nodes, nd)
			i++
		case ".subckt":
			p, err := need(ln)
			if err != nil {
				return nil, err
			}
			if len(fields) < 2 {
				return nil, ln.errorf(".subckt needs a model name")
			}
			bind := map[string]string{}
			for _, as := range fields[2:] {
				eq := strings.IndexByte(as, '=')
				if eq < 0 {
					return nil, ln.errorf(".subckt binding %q is not formal=actual", as)
				}
				bind[as[:eq]] = as[eq+1:]
			}
			p.subckts = append(p.subckts, subcktDecl{model: fields[1], bind: bind, ln: ln})
			i++
		case ".end":
			cur = nil
			i++
		case ".exdc":
			return nil, ln.errorf(".exdc networks are not supported")
		default:
			if strings.HasPrefix(fields[0], ".") {
				i++ // skip unsupported directives (timing etc.)
				continue
			}
			return nil, ln.errorf("unexpected token %q", fields[0])
		}
	}
	return protos, nil
}

// gateDecl resolves a .gate line into a node declaration.
func (rd *Reader) gateDecl(fields []string, ln line) (nodeDecl, error) {
	if len(fields) < 2 {
		return nodeDecl{}, ln.errorf(".gate needs a name and pin bindings")
	}
	gname := fields[0]
	fn, formals, ok := rd.Gates.GateFunc(gname)
	if !ok {
		return nodeDecl{}, ln.errorf(".gate references unknown gate %q", gname)
	}
	formalSet := map[string]bool{}
	for _, f := range formals {
		formalSet[f] = true
	}
	bind := map[string]string{}
	var outActual, outFormal string
	for _, as := range fields[1:] {
		eq := strings.IndexByte(as, '=')
		if eq < 0 {
			return nodeDecl{}, ln.errorf(".gate binding %q is not formal=actual", as)
		}
		formal, actual := as[:eq], as[eq+1:]
		if formalSet[formal] {
			bind[formal] = actual
			continue
		}
		if outActual != "" {
			return nodeDecl{}, ln.errorf(".gate %s has two output bindings (%s, %s)", gname, outFormal, formal)
		}
		outFormal, outActual = formal, actual
	}
	if outActual == "" {
		return nodeDecl{}, ln.errorf(".gate %s missing output binding", gname)
	}
	rename := map[string]string{}
	var inputs []string
	seen := map[string]bool{}
	for _, f := range formals {
		a, ok := bind[f]
		if !ok {
			return nodeDecl{}, ln.errorf(".gate %s missing binding for pin %s", gname, f)
		}
		rename[f] = a
		if !seen[a] {
			seen[a] = true
			inputs = append(inputs, a)
		}
	}
	return nodeDecl{output: outActual, inputs: inputs, fn: fn.Rename(rename), ln: ln}, nil
}

type line struct {
	num  int
	text string
}

// maxErrLen bounds the rendered message of any parse error. BLIF
// errors echo user-controlled tokens (signal names, cover rows), and
// a server returning them to clients must not relay an unbounded dump
// of the input; clipErr keeps the line number and a readable prefix.
const maxErrLen = 200

// clipErr truncates msg to maxErrLen bytes on a rune boundary.
func clipErr(msg string) string {
	if len(msg) <= maxErrLen {
		return msg
	}
	cut := maxErrLen
	for cut > 0 && !utf8.RuneStart(msg[cut]) {
		cut--
	}
	return msg[:cut] + "... (truncated)"
}

func (l line) errorf(format string, args ...any) error {
	return fmt.Errorf("blif: line %d: %s", l.num, clipErr(fmt.Sprintf(format, args...)))
}

// logicalLines collects the streaming line scanner's output; the AST
// parser needs random access for cover-row lookahead, the streaming
// subject reader (stream.go) consumes the scanner directly.
func logicalLines(r io.Reader) ([]line, error) {
	ls := newLineScanner(r)
	var out []line
	for {
		ln, ok := ls.next()
		if !ok {
			break
		}
		out = append(out, ln)
	}
	if err := ls.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// coverToExpr converts a single-output PLA cover to an expression.
func coverToExpr(inputs []string, cover []string) (*logic.Expr, error) {
	if len(inputs) == 0 {
		// Constant node: "1" means const 1; empty or "0" means const 0.
		for _, row := range cover {
			if strings.TrimSpace(row) == "1" {
				return logic.Constant(true), nil
			}
		}
		return logic.Constant(false), nil
	}
	onPhase := true
	var cubes []*logic.Expr
	for ri, row := range cover {
		fields := strings.Fields(row)
		var in, out string
		switch len(fields) {
		case 2:
			in, out = fields[0], fields[1]
		case 1:
			return nil, fmt.Errorf("cover row %d (%q) missing output column", ri, row)
		default:
			return nil, fmt.Errorf("cover row %d (%q) malformed", ri, row)
		}
		if len(in) != len(inputs) {
			return nil, fmt.Errorf("cover row %d has %d input columns, want %d", ri, len(in), len(inputs))
		}
		phase := out == "1"
		if ri == 0 {
			onPhase = phase
		} else if phase != onPhase {
			return nil, fmt.Errorf("cover mixes output phases")
		}
		var lits []*logic.Expr
		for ci, c := range in {
			switch c {
			case '1':
				lits = append(lits, logic.Variable(inputs[ci]))
			case '0':
				lits = append(lits, logic.Not(logic.Variable(inputs[ci])))
			case '-':
			default:
				return nil, fmt.Errorf("cover row %d has invalid column %q", ri, string(c))
			}
		}
		cubes = append(cubes, logic.And(lits...))
	}
	fn := logic.Or(cubes...)
	if !onPhase {
		fn = logic.Not(fn)
	}
	return fn, nil
}

// Write renders the network as BLIF using .names for every internal
// node. Node functions are emitted as sum-of-products covers.
func Write(w io.Writer, nw *network.Network) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nw.Name)
	fmt.Fprintf(bw, ".inputs")
	for _, in := range nw.Inputs() {
		fmt.Fprintf(bw, " %s", in.Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, ".outputs")
	for _, o := range nw.Outputs() {
		fmt.Fprintf(bw, " %s", o.Name)
	}
	fmt.Fprintln(bw)
	for _, l := range nw.Latches() {
		init := 0
		if l.Init {
			init = 1
		}
		fmt.Fprintf(bw, ".latch %s %s %d\n", l.Input.Name, l.Output.Name, init)
	}
	topo, err := nw.TopoSort()
	if err != nil {
		return fmt.Errorf("blif: %v", err)
	}
	for _, n := range topo {
		if n.Func == nil {
			continue
		}
		if err := writeNames(bw, n); err != nil {
			return err
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

func writeNames(w io.Writer, n *network.Node) error {
	names := make([]string, len(n.Fanins))
	for i, fi := range n.Fanins {
		names[i] = fi.Name
	}
	cubes, onPhase, err := exprCover(n.Func, names)
	if err != nil {
		return fmt.Errorf("blif: node %q: %v", n.Name, err)
	}
	fmt.Fprintf(w, ".names %s %s\n", strings.Join(names, " "), n.Name)
	outCol := "1"
	if !onPhase {
		outCol = "0"
	}
	for _, c := range cubes {
		fmt.Fprintf(w, "%s %s\n", c, outCol)
	}
	return nil
}

// exprCover returns a single-phase cube cover of fn over the ordered
// fanin list. It first tries a DNF expansion of the expression; if that
// is degenerate (constant) it falls back to explicit handling.
func exprCover(fn *logic.Expr, inputs []string) (cubes []string, onPhase bool, err error) {
	idx := map[string]int{}
	for i, in := range inputs {
		idx[in] = i
	}
	dnf, ok := toDNF(fn, 4096)
	if !ok {
		// Fall back to the complement: useful for wide XOR-like
		// functions whose off-set is smaller, and otherwise a last
		// resort truth-table expansion.
		dnf, ok = toDNF(logic.Not(fn), 4096)
		if !ok {
			return nil, false, fmt.Errorf("function too complex to expand into a cover")
		}
		return cubeStrings(dnf, idx, len(inputs)), false, nil
	}
	return cubeStrings(dnf, idx, len(inputs)), true, nil
}

// cube maps variable name -> required phase.
type cube map[string]bool

func cubeStrings(cs []cube, idx map[string]int, width int) []string {
	if len(cs) == 0 {
		// Empty DNF = constant 0: represent as an off-phase row "all
		// don't-care -> 0"? BLIF encodes constants with no rows; the
		// caller handles constants before this point in practice.
		return nil
	}
	out := make([]string, len(cs))
	for i, c := range cs {
		row := make([]byte, width)
		for j := range row {
			row[j] = '-'
		}
		for v, ph := range c {
			if ph {
				row[idx[v]] = '1'
			} else {
				row[idx[v]] = '0'
			}
		}
		out[i] = string(row)
	}
	sort.Strings(out)
	return out
}

// toDNF expands fn into a set of cubes, giving up (ok=false) past the
// limit. The expansion works on a negation-normal form computed on the
// fly. Results are memoized by (node pointer, phase): XOR expansion
// builds a DAG whose operands are shared between both phases, and a
// plain tree walk over it is exponential even when the cube limit
// fails it early.
func toDNF(fn *logic.Expr, limit int) ([]cube, bool) {
	m := &dnfMemo{memo: map[dnfKey]dnfVal{}, budget: dnfWorkBudget}
	return m.dnf(fn, false, limit)
}

// dnfWorkBudget caps the total number of cube pairs one toDNF call may
// examine. The cube limit alone bounds only the surviving cubes: a
// product of two near-limit sets whose pairs are mostly contradictory
// (parity-like functions) examines limit² pairs while its output stays
// small, which is seconds of map churn per node. The budget turns that
// into a fast, deterministic failure.
const dnfWorkBudget = 1 << 21

type dnfKey struct {
	e   *logic.Expr
	neg bool
}

type dnfVal struct {
	cubes []cube
	ok    bool
}

type dnfMemo struct {
	memo   map[dnfKey]dnfVal
	budget int
}

func (m *dnfMemo) dnf(e *logic.Expr, neg bool, limit int) ([]cube, bool) {
	key := dnfKey{e, neg}
	if v, hit := m.memo[key]; hit {
		return v.cubes, v.ok
	}
	cubes, ok := m.expand(e, neg, limit)
	m.memo[key] = dnfVal{cubes, ok}
	return cubes, ok
}

func (m *dnfMemo) expand(e *logic.Expr, neg bool, limit int) ([]cube, bool) {
	switch e.Op {
	case logic.OpConst:
		v := e.Const != neg
		if v {
			return []cube{{}}, true // tautology cube
		}
		return nil, true
	case logic.OpVar:
		return []cube{{e.Var: !neg}}, true
	case logic.OpNot:
		return m.dnf(e.Kids[0], !neg, limit)
	case logic.OpAnd, logic.OpOr:
		isAnd := (e.Op == logic.OpAnd) != neg // De Morgan under negation
		var acc []cube
		if isAnd {
			acc = []cube{{}}
			for _, k := range e.Kids {
				kd, ok := m.dnf(k, neg, limit)
				if !ok {
					return nil, false
				}
				acc, ok = m.cubeProduct(acc, kd, limit)
				if !ok {
					return nil, false
				}
			}
			return acc, true
		}
		for _, k := range e.Kids {
			kd, ok := m.dnf(k, neg, limit)
			if !ok {
				return nil, false
			}
			acc = append(acc, kd...)
			if len(acc) > limit {
				return nil, false
			}
		}
		return acc, true
	case logic.OpXor:
		// XOR(a, rest...) = a*!XOR(rest) + !a*XOR(rest); under
		// negation flip once at the top.
		expanded := expandXor(e.Kids, neg)
		return m.dnf(expanded, false, limit)
	}
	return nil, false
}

// expandXor rewrites an XOR (or XNOR when neg) into AND/OR/NOT form.
func expandXor(kids []*logic.Expr, neg bool) *logic.Expr {
	cur := kids[0]
	for _, k := range kids[1:] {
		cur = logic.Or(logic.And(cur, logic.Not(k)), logic.And(logic.Not(cur), k))
	}
	if neg {
		cur = logic.Not(cur)
	}
	return cur
}

// cubeProduct multiplies two cube sets, dropping contradictory
// products. It gives up (ok=false) as soon as the result exceeds
// limit — the product of two in-limit sets can be limit² cubes, far
// too many to materialize before checking — or when the pair count
// would blow the call-wide work budget.
func (m *dnfMemo) cubeProduct(a, b []cube, limit int) (out []cube, ok bool) {
	m.budget -= len(a) * len(b)
	if m.budget < 0 {
		return nil, false
	}
	for _, ca := range a {
		for _, cb := range b {
			// Lookup-only compatibility check first: most pairs of a
			// large product are contradictory, and allocating a merged
			// map per pair before checking is the dominant cost.
			compatible := true
			for v, ph := range ca {
				if oph, exists := cb[v]; exists && oph != ph {
					compatible = false
					break
				}
			}
			if !compatible {
				continue
			}
			if len(out) >= limit {
				return nil, false
			}
			prod := make(cube, len(ca)+len(cb))
			for v, ph := range ca {
				prod[v] = ph
			}
			for v, ph := range cb {
				prod[v] = ph
			}
			out = append(out, prod)
		}
	}
	return out, true
}

// ParseString parses BLIF text without a gate resolver.
func ParseString(s string) (*network.Network, error) {
	return (&Reader{}).Parse(strings.NewReader(s))
}
