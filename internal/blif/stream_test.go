package blif_test

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/blif"
	"dagcover/internal/subject"
)

// astSubject runs the reference path: full parse, then FromNetwork.
func astSubject(t testing.TB, text []byte) (*subject.Graph, error) {
	t.Helper()
	nw, err := (&blif.Reader{}).Parse(bytes.NewReader(text))
	if err != nil {
		return nil, err
	}
	return subject.FromNetwork(nw)
}

// compareSubjects checks the streaming-vs-AST equivalence contract:
// same node/NAND/INV/strash counts, same PI names in the same order,
// same output names in the same order, and functional equality of
// every output under 64-way random simulation.
func compareSubjects(t *testing.T, name string, sg, ag *subject.Graph) {
	t.Helper()
	ss, as := sg.Stats(), ag.Stats()
	if ss != as {
		t.Errorf("%s: stream stats %v != ast stats %v", name, ss, as)
	}
	if sg.StrashHits() != ag.StrashHits() {
		t.Errorf("%s: stream strash hits %d != ast %d", name, sg.StrashHits(), ag.StrashHits())
	}
	if len(sg.PIs) != len(ag.PIs) {
		t.Fatalf("%s: PI count %d != %d", name, len(sg.PIs), len(ag.PIs))
	}
	for i := range sg.PIs {
		if sg.NameOf(sg.PIs[i]) != ag.NameOf(ag.PIs[i]) {
			t.Errorf("%s: PI %d named %q (stream) vs %q (ast)", name, i, sg.NameOf(sg.PIs[i]), ag.NameOf(ag.PIs[i]))
		}
	}
	if len(sg.Outputs) != len(ag.Outputs) {
		t.Fatalf("%s: output count %d != %d", name, len(sg.Outputs), len(ag.Outputs))
	}
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 4; round++ {
		in := map[string]uint64{}
		for _, pi := range sg.PIs {
			in[sg.NameOf(pi)] = rng.Uint64()
		}
		sv, err := sg.Eval(in)
		if err != nil {
			t.Fatalf("%s: stream eval: %v", name, err)
		}
		av, err := ag.Eval(in)
		if err != nil {
			t.Fatalf("%s: ast eval: %v", name, err)
		}
		for i, so := range sg.Outputs {
			ao := ag.Outputs[i]
			if so.Name != ao.Name {
				t.Fatalf("%s: output %d named %q (stream) vs %q (ast)", name, i, so.Name, ao.Name)
			}
			if sv[so.Node] != av[ao.Node] {
				t.Errorf("%s: output %q differs under simulation", name, so.Name)
			}
		}
	}
}

// TestStreamMatchesASTOnSuite is the equivalence property over every
// suite circuit: rendering a circuit to BLIF and ingesting it through
// the streaming reader must produce the same subject graph (counts,
// strash hits, PO bindings, functions) as the AST reader.
func TestStreamMatchesASTOnSuite(t *testing.T) {
	for _, c := range bench.FullSuite() {
		var buf bytes.Buffer
		if err := blif.Write(&buf, c.Network); err != nil {
			// Some circuits hold functions blif.Write cannot expand
			// into a cover (wide XOR trees); the property needs a BLIF
			// rendering, so those are out of scope here.
			if strings.Contains(err.Error(), "too complex") {
				continue
			}
			t.Fatalf("%s: render: %v", c.Name, err)
		}
		sg, err := (&blif.Reader{}).StreamSubject(bytes.NewReader(buf.Bytes()))
		if errors.Is(err, blif.ErrNeedsAST) {
			// Sequential circuits (latches) legitimately fall back;
			// exercise the file-level fallback instead.
			path := filepath.Join(t.TempDir(), c.Name+".blif")
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatal(err)
			}
			fg, ferr := (&blif.Reader{}).ReadSubjectFile(path)
			if ferr != nil {
				t.Fatalf("%s: fallback: %v", c.Name, ferr)
			}
			ag, aerr := astSubject(t, buf.Bytes())
			if aerr != nil {
				t.Fatalf("%s: ast: %v", c.Name, aerr)
			}
			compareSubjects(t, c.Name+"(fallback)", fg, ag)
			continue
		}
		if err != nil {
			t.Fatalf("%s: stream: %v", c.Name, err)
		}
		ag, err := astSubject(t, buf.Bytes())
		if err != nil {
			t.Fatalf("%s: ast: %v", c.Name, err)
		}
		compareSubjects(t, c.Name, sg, ag)
	}
}

// TestStreamMatchesASTOnFamilies runs the same property on the
// streamed benchmark families, whose BLIF never exists as a network
// in production.
func TestStreamMatchesASTOnFamilies(t *testing.T) {
	for _, fam := range []string{"mult12", "alumesh4x3"} {
		gen, ok := bench.StreamFamily(fam)
		if !ok {
			t.Fatalf("family %s not resolved", fam)
		}
		var buf bytes.Buffer
		if err := gen(&buf); err != nil {
			t.Fatal(err)
		}
		sg, err := (&blif.Reader{}).StreamSubject(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: stream: %v", fam, err)
		}
		ag, err := astSubject(t, buf.Bytes())
		if err != nil {
			t.Fatalf("%s: ast: %v", fam, err)
		}
		compareSubjects(t, fam, sg, ag)
	}
}

func TestStreamFallsBackOutsideSubset(t *testing.T) {
	cases := []struct{ name, text string }{
		{"subckt", ".model top\n.inputs a\n.outputs o\n.subckt sub x=a y=o\n.end\n.model sub\n.inputs x\n.outputs y\n.names x y\n1 1\n.end\n"},
		{"latch", ".model seq\n.inputs a\n.outputs o\n.latch a q 0\n.names q o\n1 1\n.end\n"},
		{"forward ref", ".model fwd\n.inputs a\n.outputs o\n.names mid o\n1 1\n.names a mid\n1 1\n.end\n"},
		{"two models", ".model m1\n.inputs a\n.outputs o\n.names a o\n1 1\n.end\n.model m2\n.inputs b\n.outputs p\n.names b p\n1 1\n.end\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (&blif.Reader{}).StreamSubject(strings.NewReader(tc.text))
			if !errors.Is(err, blif.ErrNeedsAST) {
				t.Fatalf("err = %v, want ErrNeedsAST", err)
			}
			// The file-level entry point must transparently recover.
			path := filepath.Join(t.TempDir(), "m.blif")
			if err := os.WriteFile(path, []byte(tc.text), 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := (&blif.Reader{}).ReadSubjectFile(path)
			if err != nil {
				t.Fatalf("fallback: %v", err)
			}
			if len(g.Outputs) == 0 {
				t.Fatal("fallback produced no outputs")
			}
		})
	}
}

func TestStreamFlatFileSkipsFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flat.blif")
	text := ".model flat\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n"
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := (&blif.Reader{}).ReadSubjectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.Name != "flat" || len(g.PIs) != 2 || len(g.Outputs) != 1 {
		t.Fatalf("unexpected graph: name=%q pis=%d outs=%d", g.Name, len(g.PIs), len(g.Outputs))
	}
}

// TestContinuationAtEOF pins the position-accurate error for a '\'
// continuation that runs into end of file, for both reader paths.
func TestContinuationAtEOF(t *testing.T) {
	text := ".model m\n.inputs a\n.outputs o\n.names a \\"
	_, err := blif.ParseString(text)
	if err == nil || !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "end of file") {
		t.Errorf("AST parser error = %v, want line-4 continuation-at-EOF", err)
	}
	_, err = (&blif.Reader{}).StreamSubject(strings.NewReader(text))
	if err == nil || !strings.Contains(err.Error(), "line 4") || !strings.Contains(err.Error(), "end of file") {
		t.Errorf("stream reader error = %v, want line-4 continuation-at-EOF", err)
	}
}

func TestStreamErrors(t *testing.T) {
	cases := []struct{ name, text, want string }{
		{"empty", "", "no model"},
		{"no outputs", ".model m\n.inputs a\n.end\n", "no outputs"},
		{"undefined output", ".model m\n.inputs a\n.outputs o\n.end\n", "never defined"},
		{"double drive", ".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n.names a o\n0 1\n.end\n", "twice"},
		{"drives input", ".model m\n.inputs a\n.outputs a\n.names a\n1\n.end\n", "twice"},
		{"constant output", ".model m\n.inputs a\n.outputs o\n.names o\n1\n.end\n", "constant"},
		{"stray token", ".model m\n.inputs a\n.outputs o\ngarbage row\n.end\n", "unexpected token"},
		{"bad cover", ".model m\n.inputs a b\n.outputs o\n.names a b o\n1 1\n.end\n", "columns"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := (&blif.Reader{}).StreamSubject(strings.NewReader(tc.text))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
			if errors.Is(err, blif.ErrNeedsAST) {
				t.Fatalf("hard error %v must not trigger AST fallback", err)
			}
		})
	}
}

// FuzzStreamVsAST cross-checks the two readers on arbitrary input:
// whenever the streaming reader accepts a model, the AST reader must
// accept it too and produce an equivalent subject graph. The seed
// corpus covers the malformed shapes that historically broke BLIF
// readers (dangling continuations, truncated covers, stray tokens).
func FuzzStreamVsAST(f *testing.F) {
	seeds := []string{
		".model m\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n",
		".model m\n.inputs a\n.outputs o\n.names a \\\no\n1 1\n.end\n",
		".model m\n.inputs a \\",
		".model m\n.inputs a\n.outputs o\n.names a o\n1\n.end\n",
		".model m\n.inputs a\n.outputs o\n.names a o\n2 1\n.end\n",
		".names x\n",
		".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n.names a o\n1 1\n.end\n",
		".model m\n# comment only\n.end\n",
		".model m\n.inputs a\n.outputs o\n.latch a o 0\n.end\n",
		".model m\n.inputs a\n.outputs o\n.unsupported x y\n.names a o\n1 1\n.end\n",
		"\x00\x01\x02",
		".model m\n.inputs a\n.outputs o\n.names a o\n- 1\n.end\n",
	}
	dir := "testdata/fuzz-seeds"
	if entries, err := os.ReadDir(dir); err == nil {
		for _, e := range entries {
			b, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				f.Fatal(err)
			}
			seeds = append(seeds, string(b))
		}
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		if len(text) > 1<<16 {
			return
		}
		sg, serr := (&blif.Reader{}).StreamSubject(strings.NewReader(text))
		if serr != nil {
			return // rejections (including ErrNeedsAST) need no cross-check
		}
		ag, aerr := astSubject(t, []byte(text))
		if aerr != nil {
			t.Fatalf("stream accepted what AST rejects: %v\ninput: %q", aerr, text)
		}
		if sg.Stats() != ag.Stats() {
			t.Fatalf("stats diverge: stream %v, ast %v\ninput: %q", sg.Stats(), ag.Stats(), text)
		}
		if sg.StrashHits() != ag.StrashHits() {
			t.Fatalf("strash hits diverge: %d vs %d\ninput: %q", sg.StrashHits(), ag.StrashHits(), text)
		}
	})
}
