package blif

import (
	"math/rand"
	"strings"
	"testing"
)

// Random mutations of a valid BLIF file must never panic the reader;
// every accepted parse must yield a structurally valid network.
func TestParseMutationRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 1500; trial++ {
		bs := []byte(sampleBLIF)
		for m := 0; m < 1+rng.Intn(4); m++ {
			switch rng.Intn(3) {
			case 0: // flip a byte
				bs[rng.Intn(len(bs))] = byte(rng.Intn(128))
			case 1: // delete a run
				i := rng.Intn(len(bs))
				j := i + rng.Intn(8)
				if j > len(bs) {
					j = len(bs)
				}
				bs = append(bs[:i], bs[j:]...)
				if len(bs) == 0 {
					bs = []byte(".")
				}
			case 2: // duplicate a line
				lines := strings.Split(string(bs), "\n")
				k := rng.Intn(len(lines))
				lines = append(lines[:k], append([]string{lines[k]}, lines[k:]...)...)
				bs = []byte(strings.Join(lines, "\n"))
			}
		}
		in := string(bs)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString panicked on mutation:\n%s\npanic: %v", in, r)
				}
			}()
			nw, err := ParseString(in)
			if err == nil {
				if cerr := nw.Check(); cerr != nil {
					t.Fatalf("accepted BLIF produced invalid network: %v\n%s", cerr, in)
				}
			}
		}()
	}
}

// Garbage input never panics.
func TestParseGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	for trial := 0; trial < 1000; trial++ {
		n := rng.Intn(120)
		bs := make([]byte, n)
		for i := range bs {
			bs[i] = byte(rng.Intn(256))
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("ParseString panicked on garbage: %v", r)
				}
			}()
			_, _ = ParseString(string(bs))
		}()
	}
}

// Parse errors echo user-controlled tokens, so a server relaying them
// as 400 responses needs them bounded: whatever garbage the input
// holds, the message keeps its line number and stays short.
func TestParseErrorsBounded(t *testing.T) {
	huge := strings.Repeat("x", 10_000)
	cases := map[string]string{
		"huge undefined signal": ".model t\n.inputs a\n.outputs o\n.names a " + huge + " o\n11 1\n.end\n",
		"huge unexpected token": ".model t\n" + huge + "\n.end\n",
		"huge subckt model":     ".model t\n.inputs a\n.outputs o\n.names a o\n1 1\n.subckt " + huge + " x=a\n.end\n",
		"huge cover row":        ".model t\n.inputs a\n.outputs o\n.names a o\n" + huge + " 1\n.end\n",
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseString(src)
			if err == nil {
				t.Fatal("parse accepted malformed input")
			}
			msg := err.Error()
			if len(msg) > maxErrLen+100 {
				t.Fatalf("error message is %d bytes, want bounded: %.120s...", len(msg), msg)
			}
			if !strings.Contains(msg, "line ") {
				t.Fatalf("error message lost its line number: %s", msg)
			}
		})
	}
}
