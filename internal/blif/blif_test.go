package blif

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"dagcover/internal/logic"
	"dagcover/internal/network"
)

const sampleBLIF = `
# full adder
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

func TestParseFullAdder(t *testing.T) {
	nw, err := ParseString(sampleBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Name != "fa" {
		t.Errorf("model name = %q", nw.Name)
	}
	if len(nw.Inputs()) != 3 || len(nw.Outputs()) != 2 {
		t.Fatalf("io counts wrong: %d/%d", len(nw.Inputs()), len(nw.Outputs()))
	}
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"a": 0xAA, "b": 0xCC, "cin": 0xF0}
	out, err := sim.RunOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		a := int(in["a"] >> uint(r) & 1)
		b := int(in["b"] >> uint(r) & 1)
		c := int(in["cin"] >> uint(r) & 1)
		s := a + b + c
		if got := int(out["sum"] >> uint(r) & 1); got != s&1 {
			t.Errorf("row %d: sum=%d want %d", r, got, s&1)
		}
		if got := int(out["cout"] >> uint(r) & 1); got != s>>1 {
			t.Errorf("row %d: cout=%d want %d", r, got, s>>1)
		}
	}
}

func TestParseOffPhaseCover(t *testing.T) {
	// NOR via off-phase: output 0 when any input is 1.
	nw, err := ParseString(`
.model nor
.inputs a b
.outputs y
.names a b y
1- 0
-1 0
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	y := nw.Node("y")
	eq, err := logic.Equivalent(y.Func, logic.MustParse("!(a+b)"))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Errorf("off-phase cover parsed as %v", y.Func)
	}
}

func TestParseConstants(t *testing.T) {
	nw, err := ParseString(`
.model c
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a one zero f
1-- 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if !nw.Node("one").Func.Const || nw.Node("one").Func.Op != logic.OpConst {
		t.Error("constant 1 not parsed")
	}
	if nw.Node("zero").Func.Const || nw.Node("zero").Func.Op != logic.OpConst {
		t.Error("constant 0 not parsed")
	}
}

func TestParseLatch(t *testing.T) {
	// Forward reference: the latch input n is defined after .latch —
	// standard in real BLIF files (state feedback loops).
	nw, err := ParseString(`
.model seq
.inputs d
.outputs q
.latch n q 1
.names d q n
10 1
01 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Latches()) != 1 {
		t.Fatalf("latches = %d", len(nw.Latches()))
	}
	l := nw.Latches()[0]
	if l.Input.Name != "n" || l.Output.Name != "q" || !l.Init {
		t.Errorf("latch = %+v", l)
	}
	if err := nw.Check(); err != nil {
		t.Fatal(err)
	}
	// Missing driver must still be an error.
	if _, err := ParseString(".model m\n.inputs d\n.outputs q\n.latch ghost q 1\n.end"); err == nil {
		t.Error("latch with undefined input accepted")
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	nw, err := ParseString(`
.model cont
.inputs a \
b
.outputs f # trailing comment
.names a b f
11 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Inputs()) != 2 {
		t.Fatalf("continuation line not joined: inputs=%d", len(nw.Inputs()))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"", // no model
		".model m\n.inputs a\n.names a a f\n1 1\n.end",    // malformed row width
		".model m\n.inputs a\n.names a f\n1 1\n0 0\n.end", // mixed phase
		".model m\n.inputs a\n.names a f\n2 1\n.end",      // bad column
		".model m\n.inputs a\n.outputs g\n.end",           // unknown output
		".model m\n.inputs a\ngarbage\n.end",              // stray token
		".model m\n.inputs a\n.gate NAND2 a=a O=f\n.end",  // .gate without resolver
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("expected error for %q", c)
		}
	}
}

type fakeResolver struct{}

func (fakeResolver) GateFunc(name string) (*logic.Expr, []string, bool) {
	switch name {
	case "NAND2":
		return logic.MustParse("!(a*b)"), []string{"a", "b"}, true
	case "INV":
		return logic.MustParse("!a"), []string{"a"}, true
	}
	return nil, nil, false
}

func TestParseGate(t *testing.T) {
	rd := &Reader{Gates: fakeResolver{}}
	nw, err := rd.Parse(strings.NewReader(`
.model mapped
.inputs x y
.outputs f
.gate NAND2 a=x b=y O=n1
.gate INV a=n1 O=f
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	f := nw.Node("f")
	if f == nil {
		t.Fatal("node f missing")
	}
	sim, _ := network.NewSimulator(nw)
	out, err := sim.RunOutputs(map[string]uint64{"x": 0xA, "y": 0xC})
	if err != nil {
		t.Fatal(err)
	}
	// f = x AND y
	if out["f"] != (0xA & 0xC) {
		t.Errorf("mapped gate network computed %x, want %x", out["f"], 0xA&0xC)
	}
	// Unknown gate
	if _, err := rd.Parse(strings.NewReader(".model m\n.inputs a\n.outputs f\n.gate XYZ a=a O=f\n.end")); err == nil {
		t.Error("unknown gate accepted")
	}
	// Missing pin binding
	if _, err := rd.Parse(strings.NewReader(".model m\n.inputs a\n.outputs f\n.gate NAND2 a=a O=f\n.end")); err == nil {
		t.Error("missing binding accepted")
	}
}

func TestGateSharedActual(t *testing.T) {
	// Both pins tied to the same net: f = !(x*x) = !x.
	rd := &Reader{Gates: fakeResolver{}}
	nw, err := rd.Parse(strings.NewReader(`
.model m
.inputs x
.outputs f
.gate NAND2 a=x b=x O=f
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	sim, _ := network.NewSimulator(nw)
	out, _ := sim.RunOutputs(map[string]uint64{"x": 0b01})
	if out["f"]&0b11 != 0b10 {
		t.Errorf("tied-input NAND computed %b", out["f"]&0b11)
	}
}

// Property: Write then Parse preserves network behaviour.
func TestWriteParseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		nw := randomNetwork(t, rng)
		var buf bytes.Buffer
		if err := Write(&buf, nw); err != nil {
			t.Fatal(err)
		}
		again, err := ParseString(buf.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, buf.String())
		}
		if !sameBehaviour(t, nw, again, rng) {
			t.Fatalf("trial %d: round trip changed behaviour\n%s", trial, buf.String())
		}
	}
}

func randomNetwork(t *testing.T, rng *rand.Rand) *network.Network {
	t.Helper()
	nw := network.New("rt")
	names := []string{"a", "b", "c", "d"}
	for _, n := range names {
		if _, err := nw.AddInput(n); err != nil {
			t.Fatal(err)
		}
	}
	for g := 0; g < 15; g++ {
		name := "n" + string(rune('0'+g/10)) + string(rune('0'+g%10))
		k := 1 + rng.Intn(3)
		var fanins []string
		seen := map[string]bool{}
		for len(fanins) < k {
			f := names[rng.Intn(len(names))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		kids := make([]*logic.Expr, len(fanins))
		for i, f := range fanins {
			kids[i] = logic.Variable(f)
		}
		var fn *logic.Expr
		switch rng.Intn(4) {
		case 0:
			fn = logic.Not(logic.And(kids...))
		case 1:
			fn = logic.Or(kids...)
		case 2:
			fn = logic.Xor(kids...)
		default:
			fn = logic.Not(kids[0])
		}
		if _, err := nw.AddNode(name, fanins, fn); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	if err := nw.MarkOutput(names[len(names)-1]); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput(names[len(names)-2]); err != nil {
		t.Fatal(err)
	}
	return nw
}

func sameBehaviour(t *testing.T, a, b *network.Network, rng *rand.Rand) bool {
	t.Helper()
	sa, err := network.NewSimulator(a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := network.NewSimulator(b)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 8; round++ {
		in := map[string]uint64{}
		for _, pi := range a.Inputs() {
			in[pi.Name] = rng.Uint64()
		}
		oa, err := sa.RunOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := sb.RunOutputs(in)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range oa {
			if ob[k] != v {
				return false
			}
		}
	}
	return true
}

func TestWriteLatches(t *testing.T) {
	nw := network.New("seq")
	if _, err := nw.AddInput("d"); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddLatch("d", "q", true); err != nil {
		t.Fatal(err)
	}
	if _, err := nw.AddNode("f", []string{"q"}, logic.MustParse("!q")); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nw); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".latch d q 1") {
		t.Errorf("latch not written:\n%s", buf.String())
	}
	again, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(again.Latches()) != 1 || !again.Latches()[0].Init {
		t.Error("latch round trip failed")
	}
}

func TestXorCoverExpansion(t *testing.T) {
	// 5-input XOR stresses the DNF expansion (16 cubes).
	nw := network.New("xor5")
	vars := []string{"a", "b", "c", "d", "e"}
	kids := make([]*logic.Expr, 5)
	for i, v := range vars {
		if _, err := nw.AddInput(v); err != nil {
			t.Fatal(err)
		}
		kids[i] = logic.Variable(v)
	}
	if _, err := nw.AddNode("f", vars, logic.Xor(kids...)); err != nil {
		t.Fatal(err)
	}
	if err := nw.MarkOutput("f"); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, nw); err != nil {
		t.Fatal(err)
	}
	again, err := ParseString(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	eq, err := logic.Equivalent(again.Node("f").Func, logic.MustParse("a^b^c^d^e"))
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("XOR5 round trip changed function")
	}
}

func TestParseForwardReferences(t *testing.T) {
	// g is used by f before g is declared — legal BLIF.
	nw, err := ParseString(`
.model fwd
.inputs a b
.outputs f
.names g a f
11 1
.names a b g
10 1
01 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunOutputs(map[string]uint64{"a": 0b0101, "b": 0b0011})
	if err != nil {
		t.Fatal(err)
	}
	// f = (a^b)*a: only row 2 (a=1, b=0) sets f.
	if out["f"]&0b1111 != 0b0100 {
		t.Errorf("forward-ref network computed %04b", out["f"]&0b1111)
	}
}

func TestParseSubcktFlattening(t *testing.T) {
	nw, err := ParseString(`
.model top
.inputs x y z
.outputs s c
.subckt ha a=x b=y sum=s1 carry=c1
.subckt ha a=s1 b=z sum=s carry=c2
.names c1 c2 c
1- 1
-1 1
.end

.model ha
.inputs a b
.outputs sum carry
.names a b sum
10 1
01 1
.names a b carry
11 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	// The flattened circuit is a full adder built from two half adders.
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	in := map[string]uint64{"x": 0xAA, "y": 0xCC, "z": 0xF0}
	out, err := sim.RunOutputs(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 8; r++ {
		sum := int(in["x"]>>uint(r)&1) + int(in["y"]>>uint(r)&1) + int(in["z"]>>uint(r)&1)
		if got := int(out["s"] >> uint(r) & 1); got != sum&1 {
			t.Errorf("row %d: s=%d want %d", r, got, sum&1)
		}
		if got := int(out["c"] >> uint(r) & 1); got != sum>>1 {
			t.Errorf("row %d: c=%d want %d", r, got, sum>>1)
		}
	}
}

func TestParseSubcktNested(t *testing.T) {
	// Two levels of hierarchy.
	nw, err := ParseString(`
.model top
.inputs a b c d
.outputs f
.subckt and4 w=a x=b y=c z=d out=f
.end

.model and4
.inputs w x y z
.outputs out
.subckt and2 p=w q=x r=t1
.subckt and2 p=y q=z r=t2
.subckt and2 p=t1 q=t2 r=out
.end

.model and2
.inputs p q
.outputs r
.names p q r
11 1
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := network.NewSimulator(nw)
	if err != nil {
		t.Fatal(err)
	}
	out, err := sim.RunOutputs(map[string]uint64{"a": 0xFF, "b": 0xF0, "c": 0xCC, "d": 0xAA})
	if err != nil {
		t.Fatal(err)
	}
	if out["f"] != (0xFF & 0xF0 & 0xCC & 0xAA) {
		t.Errorf("nested AND4 = %x", out["f"])
	}
}

func TestParseSubcktErrors(t *testing.T) {
	cases := []string{
		// unknown model
		".model m\n.inputs a\n.outputs f\n.subckt nope x=a y=f\n.end",
		// unbound input
		".model m\n.inputs a\n.outputs f\n.subckt s o=f\n.end\n.model s\n.inputs i\n.outputs o\n.names i o\n1 1\n.end",
		// non-interface pin
		".model m\n.inputs a\n.outputs f\n.subckt s i=a o=f zz=a\n.end\n.model s\n.inputs i\n.outputs o\n.names i o\n1 1\n.end",
		// recursion
		".model m\n.inputs a\n.outputs f\n.subckt m a=a f=f\n.end",
		// malformed binding
		".model m\n.inputs a\n.outputs f\n.subckt s ia\n.end\n.model s\n.inputs i\n.outputs o\n.names i o\n1 1\n.end",
	}
	for _, c := range cases {
		if _, err := ParseString(c); err == nil {
			t.Errorf("expected error for:\n%s", c)
		}
	}
}

func TestParseCombinationalLoopDetected(t *testing.T) {
	_, err := ParseString(`
.model loop
.inputs a
.outputs f
.names g a f
11 1
.names f a g
11 1
.end
`)
	if err == nil {
		t.Fatal("combinational cycle accepted")
	}
	if !strings.Contains(err.Error(), "cycle") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestParseUndefinedSignal(t *testing.T) {
	_, err := ParseString(`
.model u
.inputs a
.outputs f
.names a ghost f
11 1
.end
`)
	if err == nil {
		t.Fatal("undefined signal accepted")
	}
	if !strings.Contains(err.Error(), "never defined") {
		t.Errorf("unexpected error: %v", err)
	}
}
