package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/genlib"
	"dagcover/internal/libgen"
	"dagcover/internal/logic"
	"dagcover/internal/mapping"
	"dagcover/internal/match"
	"dagcover/internal/subject"
	"dagcover/internal/verify"
)

// netlistSig serializes a netlist's cell list in emission order so two
// mappings can be compared bit-for-bit.
func netlistSig(nl *mapping.Netlist) string {
	var b strings.Builder
	for _, c := range nl.Cells {
		fmt.Fprintf(&b, "%s:%s<%s;", c.Gate.Name, c.Output, strings.Join(c.Inputs, ","))
	}
	return b.String()
}

// parallelLibs pairs each library with the delay model its paper table
// uses.
func parallelLibs() []struct {
	name  string
	lib   *genlib.Library
	delay genlib.DelayModel
} {
	return []struct {
		name  string
		lib   *genlib.Library
		delay genlib.DelayModel
	}{
		{"lib2", libgen.Lib2(), genlib.IntrinsicDelay{}},
		{"44-1", libgen.Lib441(), genlib.UnitDelay{}},
		{"44-3", libgen.Lib443(), genlib.UnitDelay{}},
	}
}

// TestParallelMatchesSerial is the determinism contract: for every
// bench circuit x library x match class, wavefront labeling with 8
// workers reproduces the serial mapping bit-for-bit — same delay, same
// cell list, same stats — and the netlist is functionally equivalent
// to the source network. Run with -race to exercise the concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	circuits := bench.FullSuite()
	libs := parallelLibs()
	if testing.Short() {
		circuits = circuits[:3]
		libs = libs[1:2]
	}
	for _, lc := range libs {
		shared, _, err := subject.CompileLibrary(lc.lib, subject.CompileOptions{Share: true})
		if err != nil {
			t.Fatal(err)
		}
		trees, _, err := subject.CompileLibrary(lc.lib, subject.CompileOptions{Share: false})
		if err != nil {
			t.Fatal(err)
		}
		matchers := map[match.Class]*match.Matcher{
			match.Exact:    match.NewMatcher(trees),
			match.Standard: match.NewMatcher(shared),
		}
		for _, c := range circuits {
			g, err := subject.FromNetwork(c.Network)
			if err != nil {
				t.Fatal(err)
			}
			for _, class := range []match.Class{match.Exact, match.Standard} {
				t.Run(fmt.Sprintf("%s/%s/%v", lc.name, c.Name, class), func(t *testing.T) {
					m := matchers[class]
					serial, err := Map(g, m, Options{Class: class, Delay: lc.delay})
					if err != nil {
						t.Fatal(err)
					}
					par, err := Map(g, m, Options{Class: class, Delay: lc.delay, Parallelism: 8})
					if err != nil {
						t.Fatal(err)
					}
					if par.Delay != serial.Delay {
						t.Errorf("delay: parallel %v, serial %v", par.Delay, serial.Delay)
					}
					if par.Netlist.NumCells() != serial.Netlist.NumCells() {
						t.Errorf("cells: parallel %d, serial %d",
							par.Netlist.NumCells(), serial.Netlist.NumCells())
					}
					if ps, ss := netlistSig(par.Netlist), netlistSig(serial.Netlist); ps != ss {
						t.Errorf("cell lists differ:\nparallel: %.200s\nserial:   %.200s", ps, ss)
					}
					if par.Stats.Counters != serial.Stats.Counters {
						t.Errorf("stats: parallel %+v, serial %+v", par.Stats, serial.Stats)
					}
					if err := verify.Mapped(c.Network, par.Netlist, verify.Options{}); err != nil {
						t.Errorf("parallel netlist not equivalent: %v", err)
					}
				})
			}
		}
	}
}

// TestParallelWorkerCountInvariance sweeps worker counts on one
// circuit: every count must give the same bytes.
func TestParallelWorkerCountInvariance(t *testing.T) {
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	ref, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	refSig := netlistSig(ref.Netlist)
	for _, workers := range []int{2, 3, 4, 7, 16} {
		res, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Parallelism: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Delay != ref.Delay || netlistSig(res.Netlist) != refSig {
			t.Errorf("workers=%d: mapping diverged from serial", workers)
		}
		if res.Stats.Counters != ref.Stats.Counters {
			t.Errorf("workers=%d: stats %+v, serial %+v", workers, res.Stats, ref.Stats)
		}
	}
}

// TestParallelWithChoices checks the wave-boundary class merge: a
// choice-encoded graph labeled in parallel reproduces the serial
// choice mapping exactly.
func TestParallelWithChoices(t *testing.T) {
	shared, _, err := subject.CompileLibrary(libgen.Lib441(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	base := match.NewMatcher(shared)
	circuits := []bench.Circuit{
		{Name: "adder16", Network: bench.RippleAdder(16)},
		{Name: "mult6", Network: bench.ArrayMultiplier(6)},
		{Name: "alu4", Network: bench.ALU(4)},
	}
	for _, c := range circuits {
		t.Run(c.Name, func(t *testing.T) {
			g, choices, err := subject.FromNetworkWithChoices(c.Network)
			if err != nil {
				t.Fatal(err)
			}
			m := base.Clone()
			m.SetChoices(choices)
			opt := Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Choices: choices}
			serial, err := Map(g, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Parallelism = 8
			par, err := Map(g, m, opt)
			if err != nil {
				t.Fatal(err)
			}
			if par.Delay != serial.Delay {
				t.Errorf("delay: parallel %v, serial %v", par.Delay, serial.Delay)
			}
			if netlistSig(par.Netlist) != netlistSig(serial.Netlist) {
				t.Errorf("choice cell lists differ")
			}
			if par.Stats.Counters != serial.Stats.Counters {
				t.Errorf("stats: parallel %+v, serial %+v", par.Stats, serial.Stats)
			}
			if err := verify.Mapped(c.Network, par.Netlist, verify.Options{}); err != nil {
				t.Errorf("parallel choice netlist not equivalent: %v", err)
			}
		})
	}
}

// TestParallelChoicesWithoutOptionsFallsBack pins the soundness guard:
// a matcher descending choices the Options don't declare cannot be
// wave-scheduled, so Map must produce the serial result (not a racy
// wrong one) even with Parallelism set.
func TestParallelChoicesWithoutOptionsFallsBack(t *testing.T) {
	shared, _, err := subject.CompileLibrary(libgen.Lib441(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	nw := bench.ArrayMultiplier(6)
	g, choices, err := subject.FromNetworkWithChoices(nw)
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	m.SetChoices(choices)
	serial, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par.Delay != serial.Delay || netlistSig(par.Netlist) != netlistSig(serial.Netlist) {
		t.Errorf("fallback mapping diverged from serial")
	}
}

// TestParallelNoMatchError checks error propagation out of the worker
// pool: an impoverished library (inverter only) cannot label a NAND
// wave and must fail cleanly, serial and parallel alike.
func TestParallelNoMatchError(t *testing.T) {
	lib := genlib.NewLibrary("invonly")
	e := logic.MustParse("!a")
	inv := &genlib.Gate{Name: "inv", Area: 1, Output: "O", Expr: e}
	inv.Pins = append(inv.Pins, genlib.Pin{Name: "a", RiseBlock: 1, FallBlock: 1, InputLoad: 1, MaxLoad: 999})
	if err := lib.Add(inv); err != nil {
		t.Fatal(err)
	}
	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(pats)
	g, err := subject.FromNetwork(bench.RippleAdder(16))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(g, m, Options{Class: match.Standard}); err == nil {
		t.Fatal("serial map with inverter-only library should fail")
	}
	if _, err := Map(g, m, Options{Class: match.Standard, Parallelism: 8}); err == nil {
		t.Fatal("parallel map with inverter-only library should fail")
	}
}

// BenchmarkLabelAllocs guards the hot-loop allocation budget: labeling
// the multiplier under 44-3. The scratch staging in bestMatch keeps
// allocations near one Match per node instead of one per improvement.
func BenchmarkLabelAllocs(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(shared)
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := &Result{Labels: make([]Label, g.NumNodes())}
		classMax := make([]int, g.NumNodes())
		for j := range classMax {
			classMax[j] = j
		}
		if err := labelSerial(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Ctx: context.Background()}, res, classMax); err != nil {
			b.Fatal(err)
		}
	}
}
