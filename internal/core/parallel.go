package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"dagcover/internal/match"
	"dagcover/internal/subject"
)

// Wavefront-parallel labeling. The topological order is partitioned
// into fanin-ready waves: a node's wave is one past the deepest wave
// among its fanins, so every label a match at the node can read —
// including labels reached through choice alternatives — belongs to
// an earlier wave. Nodes of one wave are labeled concurrently by
// workers holding private match.Matcher clones and private Stats;
// stats merge at wave boundaries and choice classes merge as soon as
// the wave containing their last member completes, before any
// consumer runs. Per-node work is identical to the serial loop and
// no cross-node state is shared inside a wave, so the resulting
// labels, stats, and netlist are byte-for-byte identical to a serial
// run for every worker count.

// minParallelWave is the wave size below which fan-out overhead
// outweighs concurrency; smaller waves run on the calling goroutine.
const minParallelWave = 16

// waveLevels assigns each node its fanin-ready wave, merging choice
// classes onto their deepest member so all members share one wave.
// The single ascending-ID pass is sound for the same reason the
// serial label merge is: consumers of any class member appear after
// the class's largest ID (see Map).
func waveLevels(g *subject.Graph, opt Options, classMax []int) ([]int32, int32) {
	nn := g.NumNodes()
	lvl := make([]int32, nn)
	maxLvl := int32(0)
	for i := 0; i < nn; i++ {
		n := subject.Node(i)
		v := int32(0)
		fis, k := g.Fanins(n)
		for fi := 0; fi < k; fi++ {
			if lvl[fis[fi]]+1 > v {
				v = lvl[fis[fi]] + 1
			}
		}
		lvl[i] = v
		if opt.Choices != nil && classMax[i] == i {
			if members := opt.Choices.Members(n); members != nil {
				top := int32(0)
				for _, mm := range members {
					if lvl[mm] > top {
						top = lvl[mm]
					}
				}
				for _, mm := range members {
					lvl[mm] = top
				}
				v = top
			}
		}
		if v > maxLvl {
			maxLvl = v
		}
	}
	return lvl, maxLvl
}

// labelWorker is the per-goroutine labeling state.
type labelWorker struct {
	m       *match.Matcher
	scratch matchScratch
	arena   nodeArena
	stats   Stats
	err     error
}

// labelChunk labels nodes[lo:hi] of one wave. Labels of earlier waves
// are read-only here and each node writes only its own slot, so
// workers never race. On error the worker keeps its first failure
// (the chunk is ascending, so this is its smallest failing node).
func (w *labelWorker) labelChunk(g *subject.Graph, opt Options, labels []Label, waveIdx int32, nodes []subject.Node, lo, hi int) {
	start := time.Now()
	span := opt.Trace.Start("core.label.chunk")
	defer func() {
		w.stats.Phases.Label += time.Since(start)
		span.Arg("wave", waveIdx).Arg("nodes", hi-lo).End()
	}()
	for i, n := range nodes[lo:hi] {
		if i%cancelCheckStride == 0 {
			if err := opt.Ctx.Err(); err != nil {
				w.err = fmt.Errorf("core: labeling interrupted: %w", err)
				return
			}
		}
		if err := bestMatch(g, w.m, n, opt, labels, math.Inf(1), nil, &w.scratch, &w.stats); err != nil {
			w.err = err
			return
		}
		labels[n] = Label{
			Arrival: w.scratch.arr,
			Pat:     w.scratch.pat,
			Leaves:  w.arena.save(w.scratch.leaves),
			Covered: w.arena.save(w.scratch.covered),
		}
		w.stats.NodesLabeled++
	}
}

// labelParallel is the wavefront counterpart of labelSerial.
func labelParallel(g *subject.Graph, m *match.Matcher, opt Options, res *Result, classMax []int) error {
	lvl, maxLvl := waveLevels(g, opt, classMax)
	nn := g.NumNodes()

	// Bucket nodes by wave, ascending ID within each wave. Wave 0 is
	// exactly the PIs (every gate node has a fanin); label them here.
	counts := make([]int32, maxLvl+1)
	for i := 0; i < nn; i++ {
		n := subject.Node(i)
		if g.KindOf(n) == subject.PI {
			res.Labels[i] = Label{Arrival: opt.Arrivals[g.NameOf(n)]}
			continue
		}
		counts[lvl[i]]++
	}
	waves := make([][]subject.Node, maxLvl+1)
	for w := range waves {
		waves[w] = make([]subject.Node, 0, counts[w])
	}
	for i := 0; i < nn; i++ {
		n := subject.Node(i)
		if g.KindOf(n) != subject.PI {
			waves[lvl[i]] = append(waves[lvl[i]], n)
		}
	}
	// Choice classes to merge at each wave boundary: the classes whose
	// last member sits in that wave.
	var merges [][]subject.Node
	if opt.Choices != nil {
		merges = make([][]subject.Node, maxLvl+1)
		for i := 0; i < nn; i++ {
			n := subject.Node(i)
			if g.KindOf(n) != subject.PI && classMax[i] == i {
				if members := opt.Choices.Members(n); members != nil {
					merges[lvl[i]] = append(merges[lvl[i]], n)
				}
			}
		}
	}

	workers := make([]*labelWorker, opt.Parallelism)
	for i := range workers {
		workers[i] = &labelWorker{m: m.Clone()}
	}
	var wg sync.WaitGroup
	for w := int32(1); w <= maxLvl; w++ {
		// Wave-boundary cancellation point: no worker is in flight
		// here, so a cancelled run stops without leaving goroutines
		// writing into res.Labels.
		if err := opt.Ctx.Err(); err != nil {
			drainWorkers(res, workers)
			return fmt.Errorf("core: labeling interrupted: %w", err)
		}
		wave := waves[w]
		if len(wave) < minParallelWave {
			workers[0].labelChunk(g, opt, res.Labels, w, wave, 0, len(wave))
			if workers[0].err != nil {
				return drainWorkers(res, workers)
			}
		} else {
			per := (len(wave) + len(workers) - 1) / len(workers)
			for i := range workers {
				lo := i * per
				if lo >= len(wave) {
					break
				}
				hi := lo + per
				if hi > len(wave) {
					hi = len(wave)
				}
				wg.Add(1)
				go func(wk *labelWorker, lo, hi int) {
					defer wg.Done()
					wk.labelChunk(g, opt, res.Labels, w, wave, lo, hi)
				}(workers[i], lo, hi)
			}
			wg.Wait()
			for _, wk := range workers {
				if wk.err != nil {
					return drainWorkers(res, workers)
				}
			}
		}
		if merges != nil {
			for _, cm := range merges[w] {
				mergeClassLabels(res.Labels, opt.Choices.Members(cm))
			}
		}
	}
	if err := drainWorkers(res, workers); err != nil {
		return err
	}
	// Worker matchers are fresh clones, so their cumulative bucket
	// counts are exactly this run's labeling probes.
	if opt.Trace.Enabled() {
		sum := make([]uint32, subject.NumSignatures)
		for _, wk := range workers {
			for i, v := range wk.m.SigBucketsTried() {
				sum[i] += v
			}
		}
		emitSigBuckets(opt.Trace, sum, nil)
	}
	return nil
}

// drainWorkers merges per-worker stats into the result and returns
// the first error in worker order. Chunks are contiguous ascending ID
// ranges, so the first error in worker order is the error at the
// smallest failing node — the one the serial loop would have hit.
func drainWorkers(res *Result, workers []*labelWorker) error {
	var err error
	for _, w := range workers {
		res.Stats.merge(w.stats)
		w.stats = Stats{}
		if err == nil && w.err != nil {
			err = w.err
		}
	}
	return err
}
