package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"dagcover/internal/genlib"
	"dagcover/internal/libgen"
	"dagcover/internal/logic"
	"dagcover/internal/match"
	"dagcover/internal/network"
	"dagcover/internal/subject"
	"dagcover/internal/verify"
)

func matcherFor(t *testing.T, lib *genlib.Library, share bool) *match.Matcher {
	t.Helper()
	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: share})
	if err != nil {
		t.Fatal(err)
	}
	return match.NewMatcher(pats)
}

func mapNetwork(t *testing.T, nw *network.Network, lib *genlib.Library, opt Options) *Result {
	t.Helper()
	g, err := subject.FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	share := opt.Class != match.Exact
	res, err := Map(g, matcherFor(t, lib, share), opt)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustNetwork(t *testing.T, build func(nw *network.Network) error) *network.Network {
	t.Helper()
	nw := network.New("t")
	if err := build(nw); err != nil {
		t.Fatal(err)
	}
	return nw
}

func simpleAnd(t *testing.T) *network.Network {
	return mustNetwork(t, func(nw *network.Network) error {
		for _, v := range []string{"a", "b"} {
			if _, err := nw.AddInput(v); err != nil {
				return err
			}
		}
		if _, err := nw.AddNode("f", []string{"a", "b"}, logic.MustParse("a*b")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
}

func TestMapSimpleAnd(t *testing.T) {
	nw := simpleAnd(t)
	lib := libgen.Lib2()
	res := mapNetwork(t, nw, lib, Options{Class: match.Standard})
	if res.Netlist.NumCells() != 1 {
		t.Fatalf("cells = %d, want 1 (and2)", res.Netlist.NumCells())
	}
	if g := res.Netlist.Cells[0].Gate.Name; g != "and2" {
		t.Errorf("gate = %q, want and2", g)
	}
	if res.Delay != 0.9 {
		t.Errorf("delay = %v, want 0.9", res.Delay)
	}
	if err := verify.Mapped(nw, res.Netlist, verify.Options{}); err != nil {
		t.Error(err)
	}
}

// Figure 2: DAG covering duplicates the shared middle cone and beats
// tree covering.
func TestFigure2Duplication(t *testing.T) {
	lib := genlib.NewLibrary("fig2")
	addGate := func(name string, area float64, expr string) {
		e := logic.MustParse(expr)
		g := &genlib.Gate{Name: name, Area: area, Output: "O", Expr: e}
		for _, v := range e.Vars() {
			g.Pins = append(g.Pins, genlib.Pin{Name: v, InputLoad: 1, MaxLoad: 999, RiseBlock: 1, FallBlock: 1})
		}
		if err := lib.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	addGate("inv", 1, "!a")
	addGate("nand2", 2, "!(a*b)")
	addGate("ao21n", 3, "a*b+!c") // matches NAND(NAND(a,b), c)

	g := subject.NewGraph("fig2", true)
	a, _ := g.AddPI("a")
	b, _ := g.AddPI("b")
	c, _ := g.AddPI("c")
	d, _ := g.AddPI("d")
	m := g.Nand(a, b)
	o1 := g.Nand(m, c)
	o2 := g.Nand(m, d)
	g.MarkOutput("o1", o1)
	g.MarkOutput("o2", o2)

	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	mt := match.NewMatcher(pats)

	tree, err := Map(g, mt, Options{Class: match.Exact, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	dag, err := Map(g, mt, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Delay != 2 {
		t.Errorf("tree delay = %v, want 2 (no exact match through the fanout)", tree.Delay)
	}
	if dag.Delay != 1 {
		t.Errorf("DAG delay = %v, want 1 (ao21n through the duplicated cone)", dag.Delay)
	}
	if dag.Stats.DuplicatedNodes != 1 {
		t.Errorf("duplicated nodes = %d, want 1 (the middle NAND)", dag.Stats.DuplicatedNodes)
	}
	for _, cell := range dag.Netlist.Cells {
		if cell.Gate.Name != "ao21n" {
			t.Errorf("DAG mapping used %q; want only ao21n cells", cell.Gate.Name)
		}
	}
	// Both mappings must be functionally correct.
	ref := figure2Reference(t)
	if err := verify.Mapped(ref, tree.Netlist, verify.Options{}); err != nil {
		t.Errorf("tree mapping: %v", err)
	}
	if err := verify.Mapped(ref, dag.Netlist, verify.Options{}); err != nil {
		t.Errorf("DAG mapping: %v", err)
	}
}

// figure2Reference reconstructs the figure-2 subject as a network.
func figure2Reference(t *testing.T) *network.Network {
	return mustNetwork(t, func(nw *network.Network) error {
		for _, v := range []string{"a", "b", "c", "d"} {
			if _, err := nw.AddInput(v); err != nil {
				return err
			}
		}
		if _, err := nw.AddNode("o1", []string{"a", "b", "c"}, logic.MustParse("!(!(a*b)*c)")); err != nil {
			return err
		}
		if _, err := nw.AddNode("o2", []string{"a", "b", "d"}, logic.MustParse("!(!(a*b)*d)")); err != nil {
			return err
		}
		if err := nw.MarkOutput("o1"); err != nil {
			return err
		}
		return nw.MarkOutput("o2")
	})
}

// randomNetwork builds a random acyclic network.
func randomNetwork(t *testing.T, rng *rand.Rand, nIn, nGates int) *network.Network {
	t.Helper()
	nw := network.New(fmt.Sprintf("rand%d", rng.Int63n(1<<30)))
	var names []string
	for i := 0; i < nIn; i++ {
		name := fmt.Sprintf("i%d", i)
		if _, err := nw.AddInput(name); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	for g := 0; g < nGates; g++ {
		name := fmt.Sprintf("g%d", g)
		k := 1 + rng.Intn(3)
		var fanins []string
		seen := map[string]bool{}
		for len(fanins) < k {
			f := names[rng.Intn(len(names))]
			if !seen[f] {
				seen[f] = true
				fanins = append(fanins, f)
			}
		}
		kids := make([]*logic.Expr, len(fanins))
		for i, f := range fanins {
			kids[i] = logic.Variable(f)
		}
		var fn *logic.Expr
		switch rng.Intn(5) {
		case 0:
			fn = logic.Not(logic.And(kids...))
		case 1:
			fn = logic.Or(kids...)
		case 2:
			fn = logic.Xor(kids...)
		case 3:
			fn = logic.And(kids...)
		default:
			fn = logic.Not(logic.Or(kids...))
		}
		if _, err := nw.AddNode(name, fanins, fn); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	// Mark the last few nodes as outputs.
	for i := 0; i < 3; i++ {
		if err := nw.MarkOutput(names[len(names)-1-i]); err != nil {
			t.Fatal(err)
		}
	}
	return nw
}

func TestMappedEquivalenceAcrossClassesAndLibraries(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	libs := []struct {
		lib *genlib.Library
		dm  genlib.DelayModel
	}{
		{libgen.Lib441(), genlib.UnitDelay{}},
		{libgen.Lib2(), genlib.IntrinsicDelay{}},
	}
	for trial := 0; trial < 6; trial++ {
		nw := randomNetwork(t, rng, 5, 20)
		for _, l := range libs {
			for _, class := range []match.Class{match.Exact, match.Standard, match.Extended} {
				res := mapNetwork(t, nw, l.lib, Options{Class: class, Delay: l.dm})
				if err := verify.Mapped(nw, res.Netlist, verify.Options{}); err != nil {
					t.Fatalf("trial %d lib %s class %v: %v", trial, l.lib.Name, class, err)
				}
				tm, err := res.Netlist.Delay(l.dm, nil)
				if err != nil {
					t.Fatal(err)
				}
				if math.Abs(tm.Delay-res.Delay) > 1e-9 {
					t.Fatalf("trial %d lib %s class %v: label delay %v != netlist delay %v",
						trial, l.lib.Name, class, res.Delay, tm.Delay)
				}
			}
		}
	}
}

// With only {inv, nand2} and unit delay, the optimal mapped depth is
// exactly the subject-graph depth.
func TestUnitDelayDepthEqualsSubjectDepth(t *testing.T) {
	lib := genlib.NewLibrary("base")
	for _, spec := range []struct{ name, expr string }{{"inv", "!a"}, {"nand2", "!(a*b)"}} {
		e := logic.MustParse(spec.expr)
		g := &genlib.Gate{Name: spec.name, Area: 1, Output: "O", Expr: e}
		for _, v := range e.Vars() {
			g.Pins = append(g.Pins, genlib.Pin{Name: v, RiseBlock: 1, FallBlock: 1, InputLoad: 1, MaxLoad: 999})
		}
		if err := lib.Add(g); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 5; trial++ {
		nw := randomNetwork(t, rng, 4, 15)
		g, err := subject.FromNetwork(nw)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Map(g, matcherFor(t, lib, true), Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
		if err != nil {
			t.Fatal(err)
		}
		// Depth of the demanded cones only: compute max depth over
		// outputs.
		depth := 0.0
		lv := make([]float64, g.NumNodes())
		for i := 0; i < g.NumNodes(); i++ {
			fis, k := g.Fanins(subject.Node(i))
			for fi := 0; fi < k; fi++ {
				if lv[fis[fi]]+1 > lv[i] {
					lv[i] = lv[fis[fi]] + 1
				}
			}
		}
		for _, o := range g.Outputs {
			if lv[o.Node] > depth {
				depth = lv[o.Node]
			}
		}
		if res.Delay != depth {
			t.Errorf("trial %d: delay %v != output depth %v", trial, res.Delay, depth)
		}
	}
}

func TestClassOrdering(t *testing.T) {
	// Extended <= Standard <= Exact on delay, for any library.
	rng := rand.New(rand.NewSource(47))
	lib := libgen.Lib2()
	for trial := 0; trial < 6; trial++ {
		nw := randomNetwork(t, rng, 5, 25)
		exact := mapNetwork(t, nw, lib, Options{Class: match.Exact})
		std := mapNetwork(t, nw, lib, Options{Class: match.Standard})
		ext := mapNetwork(t, nw, lib, Options{Class: match.Extended})
		if std.Delay > exact.Delay+1e-9 {
			t.Errorf("trial %d: standard (%v) worse than exact (%v)", trial, std.Delay, exact.Delay)
		}
		if ext.Delay > std.Delay+1e-9 {
			t.Errorf("trial %d: extended (%v) worse than standard (%v)", trial, ext.Delay, std.Delay)
		}
	}
}

func TestRicherLibraryNeverSlower(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	l441, l443 := libgen.Lib441(), libgen.Lib443()
	for trial := 0; trial < 4; trial++ {
		nw := randomNetwork(t, rng, 5, 25)
		small := mapNetwork(t, nw, l441, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
		rich := mapNetwork(t, nw, l443, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
		if rich.Delay > small.Delay+1e-9 {
			t.Errorf("trial %d: 44-3 (%v) slower than 44-1 (%v)", trial, rich.Delay, small.Delay)
		}
	}
}

func TestAreaRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	lib := libgen.Lib2()
	improved := false
	for trial := 0; trial < 8; trial++ {
		nw := randomNetwork(t, rng, 5, 30)
		plain := mapNetwork(t, nw, lib, Options{Class: match.Standard})
		rec := mapNetwork(t, nw, lib, Options{Class: match.Standard, AreaRecovery: true})
		if math.Abs(plain.Delay-rec.Delay) > 1e-9 {
			t.Errorf("trial %d: area recovery changed delay %v -> %v", trial, plain.Delay, rec.Delay)
		}
		if rec.Netlist.Area() > plain.Netlist.Area()+1e-9 {
			t.Errorf("trial %d: area recovery increased area %v -> %v",
				trial, plain.Netlist.Area(), rec.Netlist.Area())
		}
		if rec.Netlist.Area() < plain.Netlist.Area()-1e-9 {
			improved = true
		}
		if err := verify.Mapped(nw, rec.Netlist, verify.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
	if !improved {
		t.Log("area recovery never improved area on these trials (acceptable but unusual)")
	}
}

func TestArrivalTimes(t *testing.T) {
	nw := simpleAnd(t)
	lib := libgen.Lib2()
	res := mapNetwork(t, nw, lib, Options{
		Class:    match.Standard,
		Arrivals: map[string]float64{"a": 10},
	})
	if res.Delay != 10.9 {
		t.Errorf("delay with late arrival = %v, want 10.9", res.Delay)
	}
}

func TestNoMatchError(t *testing.T) {
	// Library without an inverter cannot map an INV node.
	lib := genlib.NewLibrary("broken")
	e := logic.MustParse("!(a*b)")
	g := &genlib.Gate{Name: "nand2", Area: 1, Output: "O", Expr: e}
	for _, v := range e.Vars() {
		g.Pins = append(g.Pins, genlib.Pin{Name: v, RiseBlock: 1, FallBlock: 1})
	}
	if err := lib.Add(g); err != nil {
		t.Fatal(err)
	}
	nw := mustNetwork(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("a"); err != nil {
			return err
		}
		if _, err := nw.AddNode("f", []string{"a"}, logic.MustParse("!a")); err != nil {
			return err
		}
		return nw.MarkOutput("f")
	})
	gph, err := subject.FromNetwork(nw)
	if err != nil {
		t.Fatal(err)
	}
	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Map(gph, match.NewMatcher(pats), Options{Class: match.Standard}); err == nil {
		t.Error("mapping without an inverter succeeded")
	}
}

func TestOutputIsInput(t *testing.T) {
	// PO directly wired to a PI: no cells needed.
	nw := mustNetwork(t, func(nw *network.Network) error {
		if _, err := nw.AddInput("a"); err != nil {
			return err
		}
		if _, err := nw.AddNode("f", []string{"a"}, logic.MustParse("!a")); err != nil {
			return err
		}
		if err := nw.MarkOutput("f"); err != nil {
			return err
		}
		return nw.MarkOutput("a")
	})
	lib := libgen.Lib441()
	res := mapNetwork(t, nw, lib, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err := verify.Mapped(nw, res.Netlist, verify.Options{}); err != nil {
		t.Fatal(err)
	}
	if res.Netlist.NumCells() != 1 {
		t.Errorf("cells = %d, want 1 (just the inverter)", res.Netlist.NumCells())
	}
}

func TestSharedOutputNode(t *testing.T) {
	// Two POs on the same node: one cell, two ports.
	nw := mustNetwork(t, func(nw *network.Network) error {
		for _, v := range []string{"a", "b"} {
			if _, err := nw.AddInput(v); err != nil {
				return err
			}
		}
		if _, err := nw.AddNode("f", []string{"a", "b"}, logic.MustParse("!(a*b)")); err != nil {
			return err
		}
		if _, err := nw.AddNode("g", []string{"a", "b"}, logic.MustParse("!(a*b)")); err != nil {
			return err
		}
		if err := nw.MarkOutput("f"); err != nil {
			return err
		}
		return nw.MarkOutput("g")
	})
	lib := libgen.Lib441()
	res := mapNetwork(t, nw, lib, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if res.Netlist.NumCells() != 1 {
		t.Errorf("cells = %d, want 1 (strashed POs share a node)", res.Netlist.NumCells())
	}
	if err := verify.Mapped(nw, res.Netlist, verify.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	nw := randomNetwork(t, rng, 5, 20)
	res := mapNetwork(t, nw, libgen.Lib2(), Options{Class: match.Standard})
	if res.Stats.NodesLabeled == 0 || res.Stats.MatchesEnumerated == 0 || res.Stats.CellsEmitted == 0 {
		t.Errorf("stats not populated: %+v", res.Stats)
	}
	if res.Stats.CellsEmitted != res.Netlist.NumCells() {
		t.Errorf("cells emitted %d != netlist cells %d", res.Stats.CellsEmitted, res.Netlist.NumCells())
	}
}
