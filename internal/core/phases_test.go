package core

import (
	"strings"
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/genlib"
	"dagcover/internal/libgen"
	"dagcover/internal/match"
	"dagcover/internal/obs"
	"dagcover/internal/subject"
)

// TestPhaseMergeDeterminism pins the Stats contract after the phase
// breakdown was added: across Parallelism 1..8 the Counters stay
// byte-identical to the serial run (they merge at wave boundaries) while
// the Phases durations — which legitimately vary run to run — remain
// structurally sound: non-negative, labeling time positive, and the
// summed worker CPU (Label) at least the serial fraction of wall time it
// overlaps. Run with -race to exercise the merge.
func TestPhaseMergeDeterminism(t *testing.T) {
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	serial, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Stats.Phases.Label <= 0 {
		t.Errorf("serial Label time %v, want > 0", serial.Stats.Phases.Label)
	}
	for par := 2; par <= 8; par++ {
		res, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if res.Stats.Counters != serial.Stats.Counters {
			t.Errorf("parallelism=%d: counters %+v, serial %+v",
				par, res.Stats.Counters, serial.Stats.Counters)
		}
		p := res.Stats.Phases
		if p.Label <= 0 || p.LabelWall <= 0 {
			t.Errorf("parallelism=%d: label times %v wall %v, want > 0", par, p.Label, p.LabelWall)
		}
		if p.Area < 0 || p.Cover < 0 || p.Emit < 0 {
			t.Errorf("parallelism=%d: negative phase duration %+v", par, p)
		}
		if p.Total() <= 0 {
			t.Errorf("parallelism=%d: Total() = %v, want > 0", par, p.Total())
		}
	}
}

// TestAreaRecoveryFillsAreaPhase checks the Area duration is attributed
// only when the area-estimate pass runs.
func TestAreaRecoveryFillsAreaPhase(t *testing.T) {
	g, err := subject.FromNetwork(bench.RippleAdder(16))
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	plain, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.Phases.Area != 0 {
		t.Errorf("without AreaRecovery Area = %v, want 0", plain.Stats.Phases.Area)
	}
	rec, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}, AreaRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Stats.Phases.Area <= 0 {
		t.Errorf("with AreaRecovery Area = %v, want > 0", rec.Stats.Phases.Area)
	}
}

// TestMapTraceSpans checks that a traced run records the pipeline's
// named phase spans with counter args, attributes matcher probes per
// signature bucket, exports a schema-valid Chrome trace — and that
// tracing does not perturb the mapping.
func TestMapTraceSpans(t *testing.T) {
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		t.Fatal(err)
	}
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	quiet, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		tr := obs.New()
		res, err := Map(g, m, Options{
			Class: match.Standard, Delay: genlib.UnitDelay{},
			Parallelism: par, Trace: tr,
		})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", par, err)
		}
		if res.Delay != quiet.Delay || res.Stats.Counters != quiet.Stats.Counters {
			t.Errorf("parallelism=%d: tracing perturbed the mapping", par)
		}
		byName := map[string]int{}
		for _, e := range tr.Events() {
			byName[e.Name]++
		}
		for _, want := range []string{"core.label", "core.cover", "core.emit", "match.signature_buckets"} {
			if byName[want] == 0 {
				t.Errorf("parallelism=%d: no %q event; got %v", par, want, byName)
			}
		}
		if par > 1 && byName["core.label.chunk"] == 0 {
			t.Errorf("parallel run recorded no chunk spans; got %v", byName)
		}
		var sb strings.Builder
		if err := tr.WriteChromeTrace(&sb); err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateChromeTrace([]byte(sb.String())); err != nil {
			t.Errorf("parallelism=%d: trace fails schema validation: %v", par, err)
		}
	}
}
