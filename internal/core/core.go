// Package core implements the paper's contribution: delay-optimal
// technology mapping of a subject DAG by DAG covering (Kukimoto,
// Brayton, Sawkar, DAC 1998).
//
// The algorithm adapts FlowMap's labeling to library-based mapping
// (§3): nodes are visited in topological order and each is labeled
// with the best arrival time achievable by any library match rooted
// there,
//
//	arr(n) = min over matches M at n of
//	         max over leaves l of M of (arr(l) + pinDelay(M, l)),
//
// which satisfies the principle of optimality under a load-independent
// delay model. A mapped netlist is then constructed backwards from the
// primary outputs (§3.3): a queue is seeded with the output nodes, the
// best gate stored at each popped node is instantiated, and its match
// leaves are enqueued unless already available. Subject nodes covered
// internally by one match and used as leaves by another are duplicated
// automatically (§3.5, Figure 2).
//
// The same engine runs the conventional tree-covering baseline when
// given match.Exact (every internally covered node must then have all
// fanouts inside the match, which confines matches to fanout-free
// regions — exactly SIS tree mapping on the same subject graph).
package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"dagcover/internal/genlib"
	"dagcover/internal/mapping"
	"dagcover/internal/match"
	"dagcover/internal/obs"
	"dagcover/internal/subject"
)

// cancelCheckStride is how many nodes a labeling or construction loop
// processes between ctx.Err() polls. Per-node match enumeration costs
// microseconds, so a stride of 64 bounds the cancellation latency to
// well under a millisecond while keeping the poll off the hot path.
const cancelCheckStride = 64

// gcAfterLabelNodes is the subject-graph size above which Map forces a
// collection between the labeling and construction phases.
const gcAfterLabelNodes = 1 << 20

// Options configures Map.
type Options struct {
	// Class selects the match semantics. match.Standard is the
	// paper's default for DAG covering (footnote 3); match.Exact turns
	// the engine into the tree-covering baseline.
	Class match.Class
	// Delay is the delay model (default genlib.IntrinsicDelay).
	Delay genlib.DelayModel
	// Arrivals optionally gives primary-input arrival times.
	Arrivals map[string]float64
	// AreaRecovery, when set, relaxes off-critical nodes to the
	// smallest match that still meets the delay target (the area/delay
	// trade-off sketched in the paper's conclusion).
	AreaRecovery bool
	// RequiredTime relaxes the delay target for AreaRecovery: the
	// mapping may be up to RequiredTime slow instead of delay-optimal.
	// Values below the optimal delay are clamped to it; 0 means
	// optimal. This is the extension of Cong & Ding's area/depth
	// trade-off to library mapping that the paper's conclusion
	// announces as under investigation.
	RequiredTime float64
	// Choices declares functionally equivalent alternative subject
	// nodes (mapping-graph style, §4): the label of every class member
	// becomes the best over the class, and construction may realize
	// whichever member's match won. The matcher must have been given
	// the same choices (match.Matcher.SetChoices) so structural
	// descent can cross into alternative cones.
	Choices *subject.Choices
	// Parallelism is the number of labeling workers. Values <= 1 run
	// the original serial loop; n > 1 labels each fanin-ready wave of
	// the topological order concurrently on n goroutines, each with
	// its own matcher clone. The result is byte-for-byte identical to
	// the serial mapping for every worker count.
	Parallelism int
	// Ctx, when non-nil, lets callers cancel a mapping run: labeling
	// and construction poll ctx.Err() at wave boundaries and every
	// cancelCheckStride nodes, and Map returns an error wrapping
	// ctx.Err() without completing. A nil Ctx never cancels. The
	// mapped result of an uncancelled run is identical with or
	// without a context.
	Ctx context.Context
	// Trace, when non-nil, records phase spans (labeling waves, the
	// area-estimate pass, cover and emit) and the matcher's
	// per-signature-bucket probe counts into the given tracer. A nil
	// Trace costs one pointer check per phase; the mapped result is
	// identical either way.
	Trace *obs.Trace
}

// Label is the dynamic-programming state of one subject node: the best
// arrival time and the match realizing it, stored flat. Leaves and
// Covered point into a per-worker arena chunk, so labeling a graph
// costs a handful of large allocations instead of three small ones per
// node.
type Label struct {
	// Arrival is the best arrival time achievable at the node.
	Arrival float64
	// Pat is the pattern of the match realizing Arrival (nil for PIs).
	Pat *subject.Pattern
	// Leaves are the match's leaf bindings in gate-pin order.
	Leaves []subject.Node
	// Covered are the subject nodes the match covers internally
	// (including the root, excluding the leaves).
	Covered []subject.Node
}

// Counters is the deterministic work-count portion of Stats: the same
// subject, library and options yield byte-identical Counters for every
// Parallelism value, so tests compare them with ==.
type Counters struct {
	NodesLabeled      int
	MatchesEnumerated int
	// PatternsTried counts pattern plans attempted (before structural
	// descent); the matcher's root-signature index lowers it without
	// changing MatchesEnumerated.
	PatternsTried int
	CellsEmitted  int
	// DuplicatedNodes counts subject nodes that are covered
	// internally by one emitted match and also emitted as a cell root
	// themselves — the duplication of §3.5.
	DuplicatedNodes int
	// MemoHits/MemoMisses count match-memo consultations (zero when
	// the matcher has no memo table or it is disabled). Their SUM is
	// deterministic — one consultation per memoizable enumeration —
	// but the hit/miss split depends on the shared table's prior
	// warmth and on which parallel worker reaches a cone first, so
	// cross-run Counters equality checks must zero these two fields
	// (the other counters keep the byte-identical guarantee above;
	// memoization replays the exact enumeration it recorded).
	MemoHits   int
	MemoMisses int
}

// merge folds worker-local counters into c.
func (c *Counters) merge(o Counters) {
	c.NodesLabeled += o.NodesLabeled
	c.MatchesEnumerated += o.MatchesEnumerated
	c.PatternsTried += o.PatternsTried
	c.CellsEmitted += o.CellsEmitted
	c.DuplicatedNodes += o.DuplicatedNodes
	c.MemoHits += o.MemoHits
	c.MemoMisses += o.MemoMisses
}

// Phases is the per-phase time breakdown of a mapping run. Durations
// are CPU-attributed: under parallel labeling, Label sums the chunk
// times of every worker and so can exceed LabelWall, the wall-clock
// span of the labeling phase. Unlike Counters, durations vary run to
// run; only their structure (non-negative, Label >= 0 monotone under
// merge) is deterministic.
type Phases struct {
	// Label is labeling CPU time summed across workers.
	Label time.Duration
	// LabelWall is the wall-clock duration of the labeling phase.
	LabelWall time.Duration
	// Area is the area-estimate DP pass (area recovery only).
	Area time.Duration
	// Cover is match re-selection and required-time propagation.
	Cover time.Duration
	// Emit is netlist emission through the builder.
	Emit time.Duration
}

// merge folds worker-local phase times into p.
func (p *Phases) merge(o Phases) {
	p.Label += o.Label
	p.LabelWall += o.LabelWall
	p.Area += o.Area
	p.Cover += o.Cover
	p.Emit += o.Emit
}

// Total returns the summed CPU time across phases (LabelWall excluded
// — it overlaps Label).
func (p Phases) Total() time.Duration {
	return p.Label + p.Area + p.Cover + p.Emit
}

// Stats reports work done by the mapper. Under parallel labeling each
// worker accumulates a private Stats that is merged at wave
// boundaries; the Counters totals are identical to a serial run, the
// Phases durations are measured and differ run to run.
type Stats struct {
	Counters
	Phases Phases
	// MemoEntries is the shared memo table's entry count when the run
	// finished — a gauge snapshot, not an additive counter, so merge
	// leaves it alone and Map sets it once at the end.
	MemoEntries int
}

// merge folds worker-local stats into s.
func (s *Stats) merge(o Stats) {
	s.Counters.merge(o.Counters)
	s.Phases.merge(o.Phases)
}

// Result is a completed mapping.
type Result struct {
	Netlist *mapping.Netlist
	// Delay is the netlist's worst output arrival. Without a relaxed
	// RequiredTime it equals the optimal label delay.
	Delay float64
	// Labels holds the per-node DP state indexed by subject node ID.
	Labels []Label
	Stats  Stats
}

// nodeArena bump-allocates the Leaves/Covered slices stored in Labels.
// Saved slices are full-capacity subslices of large shared chunks, so
// per-node match storage costs one allocation per arenaChunk nodes of
// leaf data instead of two per node. Each labeling worker owns one
// arena; the chunks outlive the workers through the Labels that point
// into them.
type nodeArena struct {
	buf []subject.Node // len = used, cap = chunk size
}

// arenaChunk is the arena's allocation granularity in nodes.
const arenaChunk = 1 << 16

// save copies src into the arena and returns the stable copy.
func (a *nodeArena) save(src []subject.Node) []subject.Node {
	n := len(src)
	if n == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < n {
		sz := arenaChunk
		if n > sz {
			sz = n
		}
		a.buf = make([]subject.Node, 0, sz)
	}
	lo := len(a.buf)
	a.buf = a.buf[:lo+n]
	dst := a.buf[lo : lo+n : lo+n]
	copy(dst, src)
	return dst
}

// Map covers the subject graph with the matcher's pattern set.
func Map(g *subject.Graph, m *match.Matcher, opt Options) (*Result, error) {
	if opt.Delay == nil {
		opt.Delay = genlib.IntrinsicDelay{}
	}
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}
	if len(g.Outputs) == 0 {
		return nil, fmt.Errorf("core: subject graph %q has no outputs", g.Name)
	}
	nn := g.NumNodes()
	res := &Result{Labels: make([]Label, nn)}

	// classMax[i] is the largest node ID in i's choice class (i when
	// the node has no alternatives). Labels merge across a class once
	// its last member is labeled; construction orders demands by this
	// key so a match rooted at any member resolves before its leaves.
	classMax := make([]int, nn)
	for i := range classMax {
		classMax[i] = i
	}
	if opt.Choices != nil {
		for i := 0; i < nn; i++ {
			members := opt.Choices.Members(subject.Node(i))
			if members == nil {
				continue
			}
			max := subject.Node(i)
			for _, mm := range members {
				if mm > max {
					max = mm
				}
			}
			classMax[i] = int(max)
		}
	}

	// Snapshot the base matcher's per-signature probe counts so the
	// run's own probes can be reported as a diff (matchers are reused
	// across runs).
	var sigBase []uint32
	if opt.Trace.Enabled() {
		sigBase = m.SigBucketsTried()
	}

	// Phase 1: labeling in topological order — serial, or wavefront-
	// parallel when opt.Parallelism > 1 (see parallel.go). Both paths
	// produce identical labels and stats. Wave scheduling needs the
	// choice classes to merge levels: a matcher descending choices the
	// options don't declare could read labels of a later wave, so that
	// combination falls back to the serial loop.
	labelStart := time.Now()
	labelSpan := opt.Trace.Start("core.label")
	if opt.Parallelism > 1 && (opt.Choices != nil || m.Choices() == nil) {
		if err := labelParallel(g, m, opt, res, classMax); err != nil {
			return nil, err
		}
	} else if err := labelSerial(g, m, opt, res, classMax); err != nil {
		return nil, err
	}
	res.Stats.Phases.LabelWall = time.Since(labelStart)
	labelSpan.
		Arg("nodes_labeled", res.Stats.NodesLabeled).
		Arg("matches_enumerated", res.Stats.MatchesEnumerated).
		Arg("patterns_tried", res.Stats.PatternsTried).
		Arg("parallelism", opt.Parallelism).
		End()
	if g.NumNodes() >= gcAfterLabelNodes {
		// On million-node graphs the labeling workers leave behind tens
		// of MB of dense per-node scratch each. Construction is about to
		// allocate the output netlist on top of that garbage; collecting
		// here keeps the two allocation humps from stacking into the
		// peak-heap high-water mark. Below the threshold the pause would
		// cost more than the heap it returns.
		runtime.GC()
	}

	// Phase 2: backward construction.
	if err := construct(g, m, opt, res, classMax); err != nil {
		return nil, err
	}
	if opt.Trace.Enabled() {
		emitSigBuckets(opt.Trace, m.SigBucketsTried(), sigBase)
	}
	if g.NumNodes() >= gcAfterLabelNodes {
		// Same reasoning as the post-labeling collection: construction
		// just dropped its per-node arrays and the re-timing below
		// builds a nets-sized arrival map; collect so the humps don't
		// stack.
		runtime.GC()
	}
	// Report the constructed netlist's delay. It equals the optimal
	// label delay except under a relaxed RequiredTime, where it may
	// sit anywhere between the optimum and the target.
	tm, err := res.Netlist.Delay(opt.Delay, opt.Arrivals)
	if err != nil {
		return nil, err
	}
	res.Delay = tm.Delay
	if mm := m.Memo(); mm != nil {
		res.Stats.MemoEntries = mm.Stats().Entries
	}
	return res, nil
}

// emitSigBuckets records the matcher's per-root-signature probe
// counts accumulated during this run (cur minus the base snapshot,
// plus any extra already-diffed worker counts) as one instant event.
func emitSigBuckets(tr *obs.Trace, cur, base []uint32) {
	var args []obs.Arg
	var total uint64
	for i := range cur {
		d := uint64(cur[i])
		if i < len(base) {
			d -= uint64(base[i])
		}
		if d == 0 {
			continue
		}
		total += d
		args = append(args, obs.Arg{Key: fmt.Sprintf("sig_%03d", i), Val: d})
	}
	if total == 0 {
		return
	}
	hit := len(args)
	args = append(args, obs.Arg{Key: "total", Val: total},
		obs.Arg{Key: "buckets_hit", Val: hit})
	tr.Instant("match.signature_buckets", args...)
}

// labelSerial runs the labeling DP in plain topological order.
func labelSerial(g *subject.Graph, m *match.Matcher, opt Options, res *Result, classMax []int) error {
	start := time.Now()
	defer func() { res.Stats.Phases.Label += time.Since(start) }()
	var scratch matchScratch
	var arena nodeArena
	nn := g.NumNodes()
	for i := 0; i < nn; i++ {
		if i%cancelCheckStride == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return fmt.Errorf("core: labeling interrupted: %w", err)
			}
		}
		n := subject.Node(i)
		if g.KindOf(n) == subject.PI {
			res.Labels[i] = Label{Arrival: opt.Arrivals[g.NameOf(n)]}
			continue
		}
		if err := bestMatch(g, m, n, opt, res.Labels, math.Inf(1), nil, &scratch, &res.Stats); err != nil {
			return err
		}
		res.Labels[i] = Label{
			Arrival: scratch.arr,
			Pat:     scratch.pat,
			Leaves:  arena.save(scratch.leaves),
			Covered: arena.save(scratch.covered),
		}
		res.Stats.NodesLabeled++
		// Merge the class once its last member is labeled: every
		// member takes the best member's label (consumers only appear
		// later, so they see the merged value).
		if opt.Choices != nil && classMax[i] == i {
			mergeClassLabels(res.Labels, opt.Choices.Members(n))
		}
	}
	return nil
}

// mergeClassLabels gives every choice-class member the best member's
// label. Member order decides float ties, so serial and parallel runs
// merge identically.
func mergeClassLabels(labels []Label, members []subject.Node) {
	if members == nil {
		return
	}
	best := members[0]
	for _, mm := range members[1:] {
		if labels[mm].Arrival < labels[best].Arrival {
			best = mm
		}
	}
	for _, mm := range members {
		labels[mm] = labels[best]
	}
}

// matchArrival computes the arrival time of a match from its leaves.
func matchArrival(mt *match.Match, dm genlib.DelayModel, labels []Label) float64 {
	worst := math.Inf(-1)
	for pin, leaf := range mt.Leaves {
		if v := labels[leaf].Arrival + dm.PinDelay(mt.Pattern.Gate, pin); v > worst {
			worst = v
		}
	}
	return worst
}

// matchScratch stages the in-flight best match of one bestMatch caller
// (one per labeling worker). The winner is held here — pattern,
// arrival, and leaf/cover bindings in reusable slices — so an
// enumeration that improves its best k times costs zero allocations;
// the caller copies the winner into its arena exactly once.
type matchScratch struct {
	pat     *subject.Pattern
	arr     float64
	leaves  []subject.Node
	covered []subject.Node

	// Persistent enumeration callback and its per-call registers.
	// bestMatch parameterizes the scratch and hands cb to Enumerate;
	// binding the closure once per scratch (not once per node) keeps
	// labeling free of per-node closure allocations.
	cb       func(*match.Match) bool
	delay    genlib.DelayModel
	labels   []Label
	limit    float64
	areaCost func(*match.Match) float64
	st       *Stats
	bestArr  float64
	bestArea float64
}

// onMatch is the Enumerate callback body; see bestMatch for the
// selection rule.
func (s *matchScratch) onMatch(mt *match.Match) bool {
	s.st.MatchesEnumerated++
	arr := matchArrival(mt, s.delay, s.labels)
	if arr > s.limit+matchEps {
		return true
	}
	area := mt.Pattern.Gate.Area
	if s.areaCost != nil {
		area = s.areaCost(mt)
	}
	better := false
	switch {
	case s.pat == nil:
		better = true
	case s.areaCost != nil:
		better = area < s.bestArea || (area == s.bestArea && arr < s.bestArr)
	default:
		better = arr < s.bestArr || (arr == s.bestArr && area < s.bestArea)
	}
	if better {
		s.pat = mt.Pattern
		s.leaves = append(s.leaves[:0], mt.Leaves...)
		s.covered = append(s.covered[:0], mt.Covered...)
		s.bestArr, s.bestArea = arr, area
	}
	return true
}

// matchEps guards against float drift in required-time subtraction.
const matchEps = 1e-9

// bestMatch enumerates matches at n and selects the minimum-arrival
// one (ties broken toward smaller gate area), staging the winner in
// scratch. Matches slower than limit are discarded. When areaCost is
// non-nil the selection instead minimizes the match's area cost among
// matches meeting the limit — the area-recovery mode. Enumeration work
// is accumulated into st.
func bestMatch(g *subject.Graph, m *match.Matcher, n subject.Node, opt Options, labels []Label, limit float64, areaCost func(*match.Match) float64, scratch *matchScratch, st *Stats) error {
	scratch.pat = nil
	scratch.delay = opt.Delay
	scratch.labels = labels
	scratch.limit = limit
	scratch.areaCost = areaCost
	scratch.st = st
	scratch.bestArr, scratch.bestArea = 0, 0
	if scratch.cb == nil {
		scratch.cb = scratch.onMatch
	}
	tried0 := m.PatternsTried()
	hits0, misses0 := m.MemoHits(), m.MemoMisses()
	m.Enumerate(g, n, opt.Class, scratch.cb)
	st.PatternsTried += m.PatternsTried() - tried0
	st.MemoHits += m.MemoHits() - hits0
	st.MemoMisses += m.MemoMisses() - misses0
	if scratch.pat == nil {
		return fmt.Errorf(
			"core: no %v match at node %v of %q; the library must at least contain a 2-input NAND and an inverter",
			opt.Class, n, g.Name)
	}
	scratch.arr = scratch.bestArr
	return nil
}

// areaEstimates computes a min-area cover DP (sharing ignored):
// est(n) = min over matches of (gate area + sum of est(leaves)).
// Used by area recovery to score the logic a match newly demands.
func areaEstimates(g *subject.Graph, m *match.Matcher, opt Options, st *Stats) ([]float64, error) {
	start := time.Now()
	span := opt.Trace.Start("core.area_estimates")
	nn := g.NumNodes()
	defer func() {
		st.Phases.Area += time.Since(start)
		span.Arg("nodes", nn).End()
	}()
	est := make([]float64, nn)
	tried0 := m.PatternsTried()
	hits0, misses0 := m.MemoHits(), m.MemoMisses()
	defer func() {
		st.MemoHits += m.MemoHits() - hits0
		st.MemoMisses += m.MemoMisses() - misses0
	}()
	for i := 0; i < nn; i++ {
		if i%cancelCheckStride == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: area estimation interrupted: %w", err)
			}
		}
		n := subject.Node(i)
		if g.KindOf(n) == subject.PI {
			continue
		}
		best := math.Inf(1)
		found := false
		m.Enumerate(g, n, opt.Class, func(mt *match.Match) bool {
			st.MatchesEnumerated++
			cost := mt.Pattern.Gate.Area
			for _, leaf := range mt.Leaves {
				cost += est[leaf]
			}
			if cost < best {
				best = cost
				found = true
			}
			return true
		})
		if !found {
			st.PatternsTried += m.PatternsTried() - tried0
			return nil, fmt.Errorf("core: no %v match at node %v of %q", opt.Class, n, g.Name)
		}
		est[i] = best
	}
	st.PatternsTried += m.PatternsTried() - tried0
	return est, nil
}

// construct performs the backward netlist-construction phase. When
// opt.AreaRecovery is set it first computes required times in reverse
// topological order and re-selects the smallest sufficient match per
// demanded node; otherwise it emits each node's labeled best match.
func construct(g *subject.Graph, m *match.Matcher, opt Options, res *Result, classMax []int) error {
	nn := g.NumNodes()
	// Required times per demanded node; +Inf = not demanded.
	required := make([]float64, nn)
	for i := range required {
		required[i] = math.Inf(1)
	}
	// Global optimal delay = worst labeled output arrival.
	delay := math.Inf(-1)
	for _, o := range g.Outputs {
		if a := res.Labels[o.Node].Arrival; a > delay {
			delay = a
		}
	}
	res.Delay = delay
	target := delay
	if opt.AreaRecovery && opt.RequiredTime > target {
		target = opt.RequiredTime
	}
	for _, o := range g.Outputs {
		req := target
		if !opt.AreaRecovery {
			// Without recovery each output is demanded at its own
			// optimal arrival; the chosen matches are the labels'.
			req = res.Labels[o.Node].Arrival
		}
		if req < required[o.Node] {
			required[o.Node] = req
		}
	}

	// Choose matches in reverse topological order of classMax: every
	// match leaf lies strictly below its root's class maximum, so all
	// demands on a node are known by the time it is visited.
	order := make([]int32, nn)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if classMax[a] != classMax[b] {
			return classMax[a] < classMax[b]
		}
		return a < b
	})
	var areaEst []float64
	if opt.AreaRecovery {
		est, err := areaEstimates(g, m, opt, &res.Stats)
		if err != nil {
			return err
		}
		areaEst = est
	}
	coverStart := time.Now()
	coverSpan := opt.Trace.Start("core.cover")
	var scratch matchScratch
	var arena nodeArena
	// chosen[id] is the match to emit at id: the node's label, or the
	// area-recovery re-selection (Arrival is unused here). Without
	// recovery every choice IS the label, so chosen aliases res.Labels
	// rather than copying it — the copy would be a second 64B-per-node
	// array held straight through emission, a real slice of the peak on
	// million-node graphs. The emit loop filters by demand (finite
	// required time), so the undemanded labels visible through the
	// alias are never emitted.
	chosen := res.Labels
	if opt.AreaRecovery {
		chosen = make([]Label, nn)
	}
	for oi := len(order) - 1; oi >= 0; oi-- {
		if oi%cancelCheckStride == 0 {
			if err := opt.Ctx.Err(); err != nil {
				return fmt.Errorf("core: construction interrupted: %w", err)
			}
		}
		id := order[oi]
		n := subject.Node(id)
		if math.IsInf(required[id], 1) || g.KindOf(n) == subject.PI {
			continue
		}
		mt := res.Labels[id]
		if opt.AreaRecovery {
			// Score by incremental area: the gate itself plus the
			// estimated cost of leaves nobody has demanded yet.
			cost := func(cand *match.Match) float64 {
				c := cand.Pattern.Gate.Area
				for _, leaf := range cand.Leaves {
					if g.KindOf(leaf) != subject.PI && math.IsInf(required[leaf], 1) {
						c += areaEst[leaf]
					}
				}
				return c
			}
			err := bestMatch(g, m, n, opt, res.Labels, required[id], cost, &scratch, &res.Stats)
			if err != nil {
				return err // cannot happen: the labeled match meets any required >= label
			}
			mt = Label{
				Pat:     scratch.pat,
				Leaves:  arena.save(scratch.leaves),
				Covered: arena.save(scratch.covered),
			}
		}
		chosen[id] = mt
		for pin, leaf := range mt.Leaves {
			r := required[id] - opt.Delay.PinDelay(mt.Pat.Gate, pin)
			if r < required[leaf] {
				required[leaf] = r
			}
		}
	}
	res.Stats.Phases.Cover += time.Since(coverStart)
	coverSpan.Arg("area_recovery", opt.AreaRecovery).End()

	// Emit cells bottom-up (ascending ID keeps the builder happy) and
	// count duplicated nodes: cell roots that some other emitted match
	// covers internally.
	emitStart := time.Now()
	emitSpan := opt.Trace.Start("core.emit")
	b := mapping.NewBuilder(g.Name)
	for _, pi := range g.PIs {
		if err := b.AddInput(g.NameOf(pi)); err != nil {
			return err
		}
	}
	// Reserve port names after the inputs: a port that sits directly
	// on a PI shares the PI's net and needs no reservation of its own.
	for _, o := range g.Outputs {
		if g.KindOf(o.Node) != subject.PI {
			b.Reserve(o.Name)
		}
	}
	// Preferred names: outputs keep their port name when they own it.
	// Keyed by node rather than a dense nn-sized string array — ports
	// are few and the dense array is measurable at million-node scale.
	preferred := make(map[subject.Node]string, len(g.Outputs))
	for _, o := range g.Outputs {
		if _, ok := preferred[o.Node]; !ok {
			preferred[o.Node] = o.Name
		}
	}
	nets := make([]string, nn)
	coverUses := make([]int32, nn)
	for _, id := range order {
		// Demand filter: with chosen aliasing res.Labels, undemanded
		// nodes still carry their labels and must be skipped here.
		if math.IsInf(required[id], 1) {
			continue
		}
		mt := chosen[id]
		if mt.Pat == nil {
			continue
		}
		inputs := make([]string, len(mt.Leaves))
		for pin, leaf := range mt.Leaves {
			if nets[leaf] == "" {
				if g.KindOf(leaf) == subject.PI {
					nets[leaf] = g.NameOf(leaf)
				} else {
					return fmt.Errorf("core: internal error: leaf %v demanded but not built", leaf)
				}
			}
			inputs[pin] = nets[leaf]
		}
		var net string
		if p, ok := preferred[subject.Node(id)]; ok {
			net = p
		} else {
			net = b.FreshNet()
		}
		b.AddCell(mt.Pat.Gate, inputs, net)
		nets[id] = net
		res.Stats.CellsEmitted++
		for _, c := range mt.Covered {
			coverUses[c]++
		}
	}
	// A subject node realized inside two or more emitted matches has
	// been duplicated (§3.5).
	for _, uses := range coverUses {
		if uses >= 2 {
			res.Stats.DuplicatedNodes++
		}
	}
	for _, o := range g.Outputs {
		net := nets[o.Node]
		if net == "" {
			if g.KindOf(o.Node) != subject.PI {
				return fmt.Errorf("core: internal error: output %q not built", o.Name)
			}
			net = g.NameOf(o.Node)
		}
		b.MarkOutput(o.Name, net)
	}
	nl, err := b.Netlist()
	if err != nil {
		return err
	}
	res.Netlist = nl
	res.Stats.Phases.Emit += time.Since(emitStart)
	emitSpan.
		Arg("cells", res.Stats.CellsEmitted).
		Arg("duplicated", res.Stats.DuplicatedNodes).
		End()
	return nil
}
