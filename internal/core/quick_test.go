package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dagcover/internal/genlib"
	"dagcover/internal/libgen"
	"dagcover/internal/match"
	"dagcover/internal/subject"
	"dagcover/internal/verify"
)

// Property (testing/quick): for any random circuit, DAG covering is
// never slower than tree covering, the predicted delay equals the
// netlist's static timing, and the mapping is functionally correct.
func TestQuickDAGCoveringInvariants(t *testing.T) {
	lib := libgen.Lib441()
	shared, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(t, rng, 4+rng.Intn(3), 10+rng.Intn(25))
		g, err := subject.FromNetwork(nw)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		dag, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		tree, err := Map(g, m, Options{Class: match.Exact, Delay: genlib.UnitDelay{}})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if dag.Delay > tree.Delay+1e-9 {
			t.Logf("seed %d: DAG %v > tree %v", seed, dag.Delay, tree.Delay)
			return false
		}
		tm, err := dag.Netlist.Delay(genlib.UnitDelay{}, nil)
		if err != nil || math.Abs(tm.Delay-dag.Delay) > 1e-9 {
			t.Logf("seed %d: timing mismatch %v vs %v (%v)", seed, tm.Delay, dag.Delay, err)
			return false
		}
		if err := verify.Mapped(nw, dag.Netlist, verify.Options{}); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: mapping is deterministic — the same subject graph maps to
// the identical netlist every time.
func TestQuickDeterminism(t *testing.T) {
	lib := libgen.Lib2()
	shared, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(t, rng, 4, 20)
		g, err := subject.FromNetwork(nw)
		if err != nil {
			return false
		}
		a, err := Map(g, m, Options{Class: match.Standard})
		if err != nil {
			return false
		}
		b, err := Map(g, m, Options{Class: match.Standard})
		if err != nil {
			return false
		}
		if a.Delay != b.Delay || a.Netlist.NumCells() != b.Netlist.NumCells() {
			return false
		}
		for i := range a.Netlist.Cells {
			ca, cb := a.Netlist.Cells[i], b.Netlist.Cells[i]
			if ca.Gate != cb.Gate || ca.Output != cb.Output {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: delaying a primary input never improves the mapped delay,
// and delaying it by D increases the delay by at most D.
func TestQuickArrivalMonotonicity(t *testing.T) {
	lib := libgen.Lib441()
	shared, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		t.Fatal(err)
	}
	m := match.NewMatcher(shared)
	prop := func(seed int64, delayRaw uint8) bool {
		d := float64(delayRaw % 16)
		rng := rand.New(rand.NewSource(seed))
		nw := randomNetwork(t, rng, 4, 15)
		g, err := subject.FromNetwork(nw)
		if err != nil {
			return false
		}
		base, err := Map(g, m, Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
		if err != nil {
			return false
		}
		late, err := Map(g, m, Options{
			Class:    match.Standard,
			Delay:    genlib.UnitDelay{},
			Arrivals: map[string]float64{"i0": d},
		})
		if err != nil {
			return false
		}
		return late.Delay >= base.Delay-1e-9 && late.Delay <= base.Delay+d+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
