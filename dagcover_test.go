package dagcover

import (
	"bytes"
	"strings"
	"testing"

	"dagcover/internal/bench"
)

func TestFacadeQuickstart(t *testing.T) {
	nw, err := ParseBLIF(strings.NewReader(`
.model fa
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`))
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	dag, err := mapper.MapDAG(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mapper.MapTree(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dag.Delay > tree.Delay+1e-9 {
		t.Errorf("DAG delay %v exceeds tree delay %v", dag.Delay, tree.Delay)
	}
	for _, r := range []*MapResult{dag, tree} {
		if err := Verify(nw, r.Netlist); err != nil {
			t.Fatal(err)
		}
		if r.Cells == 0 || r.Area <= 0 || r.SubjectNodes == 0 {
			t.Errorf("result fields not populated: %+v", r)
		}
	}
}

func TestFacadeLibraries(t *testing.T) {
	for _, lib := range []*Library{Lib2(), Lib441(), Lib443()} {
		if lib.Inverter() == nil || lib.Nand2() == nil {
			t.Errorf("%s: missing inv/nand2", lib.Name)
		}
		var buf bytes.Buffer
		if err := WriteLibrary(&buf, lib); err != nil {
			t.Fatal(err)
		}
		again, err := LoadLibrary(lib.Name, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(again.Gates) != len(lib.Gates) {
			t.Errorf("%s: library round trip lost gates", lib.Name)
		}
	}
}

func TestFacadeMapLUT(t *testing.T) {
	nw := bench.RippleAdder(8)
	res, err := MapLUT(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Depth <= 0 || res.LUTs <= 0 {
		t.Errorf("LUT result degenerate: %+v", res)
	}
	if err := VerifyNetworks(nw, res.Network); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMapOptions(t *testing.T) {
	nw := bench.RippleAdder(6)
	mapper, err := NewMapper(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	unit, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay})
	if err != nil {
		t.Fatal(err)
	}
	ext, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay, Class: MatchExtended})
	if err != nil {
		t.Fatal(err)
	}
	if ext.Delay > unit.Delay+1e-9 {
		t.Errorf("extended (%v) worse than standard (%v)", ext.Delay, unit.Delay)
	}
	rec, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay, AreaRecovery: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Delay != unit.Delay {
		t.Errorf("area recovery changed delay: %v vs %v", rec.Delay, unit.Delay)
	}
	if _, err := mapper.MapDAG(nw, &MapOptions{Class: MatchExact}); err == nil {
		t.Log("exact class on MapDAG silently treated as default (documented zero-value behaviour)")
	}
}

func TestFacadeMinAreaTree(t *testing.T) {
	nw := bench.ALU(4)
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	minDelay, err := mapper.MapTree(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	minArea, err := mapper.MapTreeMinArea(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if minArea.Area > minDelay.Area+1e-9 {
		t.Errorf("min-area (%v) larger than min-delay (%v)", minArea.Area, minDelay.Area)
	}
	if err := Verify(nw, minArea.Netlist); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeSequential(t *testing.T) {
	nw := bench.PipelinedALU(4, 2)
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapSequential(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.PeriodAfter > res.PeriodBefore+1e-9 {
		t.Errorf("retiming worsened period: %v -> %v", res.PeriodBefore, res.PeriodAfter)
	}
	if len(res.Network.Latches()) == 0 {
		t.Error("sequential mapping lost the latches")
	}
	if err := res.Network.Check(); err != nil {
		t.Fatal(err)
	}
	// Combinational circuits are rejected.
	if _, err := mapper.MapSequential(bench.RippleAdder(4), nil); err == nil {
		t.Error("combinational circuit accepted by MapSequential")
	}
}

func TestFacadeRetime(t *testing.T) {
	nw := bench.Correlator(8)
	before, err := MinPeriod(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	rt, p, err := Retime(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p > before+1e-9 {
		t.Errorf("retiming worsened period %v -> %v", before, p)
	}
	if err := rt.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCloneMapper(t *testing.T) {
	mapper, err := NewMapper(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	c := mapper.Clone()
	nw := bench.ParityTree(8)
	a, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay})
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.MapDAG(nw, &MapOptions{Delay: UnitDelay})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delay != b.Delay || a.Cells != b.Cells {
		t.Errorf("clone mapped differently: %+v vs %+v", a, b)
	}
	if mapper.Library() != Lib441() && mapper.Library().Name != "44-1" {
		t.Errorf("library accessor wrong")
	}
}

func TestFacadeSubjectReuse(t *testing.T) {
	nw := bench.Comparator(8)
	g, err := BuildSubject(nw)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	dag, err := mapper.MapSubjectDAG(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := mapper.MapSubjectTree(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Both used the same subject graph, as in the paper's setup.
	if dag.SubjectNodes != tree.SubjectNodes {
		t.Errorf("subject sizes differ: %d vs %d", dag.SubjectNodes, tree.SubjectNodes)
	}
	if dag.Delay > tree.Delay+1e-9 {
		t.Errorf("DAG (%v) worse than tree (%v)", dag.Delay, tree.Delay)
	}
}

func TestFacadeMappedBLIFRoundTrip(t *testing.T) {
	nw := bench.RippleAdder(4)
	lib := Lib2()
	mapper, err := NewMapper(lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapDAG(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Netlist.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := ParseMappedBLIF(bytes.NewReader(buf.Bytes()), lib)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNetworks(nw, again); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBalanceSubject(t *testing.T) {
	nw := bench.ALU(4)
	g, err := BuildSubject(nw)
	if err != nil {
		t.Fatal(err)
	}
	bg, err := BalanceSubject(g)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapSubjectDAG(bg, &MapOptions{Delay: UnitDelay})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(nw, res.Netlist); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeMapDAGWithChoices(t *testing.T) {
	nw := bench.ArrayMultiplier(6)
	mapper, err := NewMapper(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	opt := &MapOptions{Delay: UnitDelay}
	plain, err := mapper.MapDAG(nw, opt)
	if err != nil {
		t.Fatal(err)
	}
	choices, err := mapper.MapDAGWithChoices(nw, opt)
	if err != nil {
		t.Fatal(err)
	}
	if choices.Delay > plain.Delay+1e-9 {
		t.Errorf("choices (%v) worse than plain DAG covering (%v)", choices.Delay, plain.Delay)
	}
	if err := Verify(nw, choices.Netlist); err != nil {
		t.Fatal(err)
	}
	if choices.SubjectNodes <= plain.SubjectNodes {
		t.Errorf("choice graph (%d nodes) should exceed the single graph (%d)",
			choices.SubjectNodes, plain.SubjectNodes)
	}
}

func TestFacadeMapSequentialLUT(t *testing.T) {
	nw := bench.PipelinedALU(4, 2)
	res, err := MapSequentialLUT(nw, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Period <= 0 || res.LUTs <= 0 {
		t.Errorf("degenerate result: %+v", res)
	}
	if err := res.Network.Check(); err != nil {
		t.Fatal(err)
	}
	if _, err := MapSequentialLUT(bench.RippleAdder(4), 4); err == nil {
		t.Error("combinational circuit accepted")
	}
}

func TestFacadeTimingAndBuffering(t *testing.T) {
	nw := bench.ALU(4)
	lib := Lib2()
	mapper, err := NewMapper(lib)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapDAG(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Slack analysis.
	rep, err := AnalyzeTiming(res.Netlist, IntrinsicDelay, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstSlack > 1e-9 || rep.WorstSlack < -1e-9 {
		t.Errorf("worst slack = %v, want 0", rep.WorstSlack)
	}
	paths, err := WorstTimingPaths(res.Netlist, IntrinsicDelay, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || len(paths[0].Cells) == 0 {
		t.Errorf("paths degenerate: %d", len(paths))
	}
	// Loaded timing and buffering.
	loaded, err := LoadTiming(res.Netlist, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loaded < res.Delay {
		t.Errorf("loaded delay %v below intrinsic %v", loaded, res.Delay)
	}
	buffered, err := InsertBuffers(res.Netlist, lib, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(nw, buffered); err != nil {
		t.Fatal(err)
	}
	// A buffer-less library fails cleanly.
	if _, err := InsertBuffers(res.Netlist, Lib441(), 4); err == nil {
		t.Error("buffer-less library accepted")
	}
}

func TestFacadeRequiredTimeTradeoff(t *testing.T) {
	nw := bench.ArrayMultiplier(6)
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	opt0, err := mapper.MapDAG(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := mapper.MapDAG(nw, &MapOptions{
		AreaRecovery: true,
		RequiredTime: opt0.Delay * 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Delay > opt0.Delay*1.2+1e-6 {
		t.Errorf("relaxed delay %v exceeds target %v", relaxed.Delay, opt0.Delay*1.2)
	}
	if relaxed.Area > opt0.Area+1e-9 {
		t.Errorf("relaxed mapping larger than optimal-delay mapping: %v vs %v", relaxed.Area, opt0.Area)
	}
	if err := Verify(nw, relaxed.Netlist); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWriteBLIFNetwork(t *testing.T) {
	nw := bench.ParityTree(5)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, nw); err != nil {
		t.Fatal(err)
	}
	again, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyNetworks(nw, again); err != nil {
		t.Fatal(err)
	}
}
