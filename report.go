package dagcover

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dagcover/internal/core"
)

// PhaseBreakdown is a mapping run broken down by pipeline phase, in
// milliseconds. For parallel labeling, LabelMillis sums the workers'
// per-chunk time (so it can exceed LabelWallMillis, and the ratio is
// the effective labeling speedup); serial runs have the two equal.
type PhaseBreakdown struct {
	LabelMillis     float64 `json:"label_ms"`
	LabelWallMillis float64 `json:"label_wall_ms"`
	AreaMillis      float64 `json:"area_ms"`
	CoverMillis     float64 `json:"cover_ms"`
	EmitMillis      float64 `json:"emit_ms"`
	TotalMillis     float64 `json:"total_ms"`
}

func phaseMillis(d time.Duration) float64 {
	return float64(d.Nanoseconds()) / 1e6
}

// phaseBreakdown converts the core engine's phase durations.
func phaseBreakdown(p core.Phases) PhaseBreakdown {
	return PhaseBreakdown{
		LabelMillis:     phaseMillis(p.Label),
		LabelWallMillis: phaseMillis(p.LabelWall),
		AreaMillis:      phaseMillis(p.Area),
		CoverMillis:     phaseMillis(p.Cover),
		EmitMillis:      phaseMillis(p.Emit),
		TotalMillis:     phaseMillis(p.LabelWall + p.Area + p.Cover + p.Emit),
	}
}

// treePhaseBreakdown maps tree covering's DP/emission split onto the
// shared shape: the DP is the covering phase, there is no separate
// labeling pass.
func treePhaseBreakdown(cover, emit time.Duration) PhaseBreakdown {
	return PhaseBreakdown{
		CoverMillis: phaseMillis(cover),
		EmitMillis:  phaseMillis(emit),
		TotalMillis: phaseMillis(cover + emit),
	}
}

// MapReport is the machine- and human-readable summary of one mapping
// run. techmap renders the same struct as text (-v) and as JSON
// (-stats-json), so the two views cannot drift.
type MapReport struct {
	Circuit           string  `json:"circuit"`
	Library           string  `json:"library"`
	Mode              string  `json:"mode"`
	DelayModel        string  `json:"delay_model"`
	SubjectNodes      int     `json:"subject_nodes"`
	SubjectSHA        string  `json:"subject_sha,omitempty"`
	Delay             float64 `json:"delay"`
	Area              float64 `json:"area"`
	Cells             int     `json:"cells"`
	DuplicatedNodes   int     `json:"duplicated_nodes"`
	LibraryGates      int     `json:"library_gates"`
	PatternsTried     int     `json:"patterns_tried"`
	MatchesEnumerated int     `json:"matches_enumerated"`
	MemoHits          int     `json:"memo_hits"`
	MemoMisses        int     `json:"memo_misses"`
	// MemoHitRate is hits/(hits+misses), 0 when the memo was off.
	MemoHitRate float64        `json:"memo_hit_rate"`
	MemoEntries int            `json:"memo_entries"`
	CPUMillis   float64        `json:"cpu_ms"`
	Phases      PhaseBreakdown `json:"phases"`
	// Verified is present only when verification ran.
	Verified *bool `json:"verified,omitempty"`
}

// NewMapReport assembles the report for one completed run.
func NewMapReport(circuit, mode, delayModel string, lib *Library, res *MapResult) *MapReport {
	return &MapReport{
		Circuit:           circuit,
		Library:           lib.Name,
		Mode:              mode,
		DelayModel:        delayModel,
		SubjectNodes:      res.SubjectNodes,
		SubjectSHA:        res.SubjectSHA,
		Delay:             res.Delay,
		Area:              res.Area,
		Cells:             res.Cells,
		DuplicatedNodes:   res.DuplicatedNodes,
		LibraryGates:      len(lib.Gates),
		PatternsTried:     res.PatternsTried,
		MatchesEnumerated: res.MatchesEnumerated,
		MemoHits:          res.MemoHits,
		MemoMisses:        res.MemoMisses,
		MemoHitRate:       memoHitRate(res.MemoHits, res.MemoMisses),
		MemoEntries:       res.MemoEntries,
		CPUMillis:         phaseMillis(res.CPU),
		Phases:            res.Phases,
	}
}

// memoHitRate is hits/(hits+misses) guarded against a zero total.
func memoHitRate(hits, misses int) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// SetVerified records a verification outcome on the report.
func (r *MapReport) SetVerified(ok bool) { r.Verified = &ok }

// WriteText renders the report for terminals. verbose additionally
// prints matcher statistics and the per-phase breakdown.
func (r *MapReport) WriteText(w io.Writer, verbose bool) {
	fmt.Fprintf(w, "%s: %s mapping with %s (%s delay)\n", r.Circuit, r.Mode, r.Library, r.DelayModel)
	fmt.Fprintf(w, "  subject nodes: %d\n", r.SubjectNodes)
	fmt.Fprintf(w, "  delay:         %.3f\n", r.Delay)
	fmt.Fprintf(w, "  area:          %.1f\n", r.Area)
	fmt.Fprintf(w, "  cells:         %d\n", r.Cells)
	if r.Mode == "dag" {
		fmt.Fprintf(w, "  duplicated:    %d subject nodes\n", r.DuplicatedNodes)
	}
	if verbose {
		if r.SubjectSHA != "" {
			fmt.Fprintf(w, "  subject sha:   %s\n", r.SubjectSHA)
		}
		fmt.Fprintf(w, "  library gates: %d\n", r.LibraryGates)
		fmt.Fprintf(w, "  patterns tried:     %d\n", r.PatternsTried)
		fmt.Fprintf(w, "  matches enumerated: %d\n", r.MatchesEnumerated)
		if r.MemoHits+r.MemoMisses > 0 {
			fmt.Fprintf(w, "  memo:               %d hits / %d misses (%.1f%% hit rate, %d entries)\n",
				r.MemoHits, r.MemoMisses, 100*r.MemoHitRate, r.MemoEntries)
		} else {
			fmt.Fprintf(w, "  memo:               off\n")
		}
		fmt.Fprintf(w, "  phases:        label %.2fms (wall %.2fms), area %.2fms, cover %.2fms, emit %.2fms\n",
			r.Phases.LabelMillis, r.Phases.LabelWallMillis,
			r.Phases.AreaMillis, r.Phases.CoverMillis, r.Phases.EmitMillis)
	}
	fmt.Fprintf(w, "  cpu:           %.1fms\n", r.CPUMillis)
	if r.Verified != nil {
		if *r.Verified {
			fmt.Fprintln(w, "  verification:  equivalent")
		} else {
			fmt.Fprintln(w, "  verification:  FAILED")
		}
	}
}

// WriteJSON renders the report as indented JSON.
func (r *MapReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
