package dagcover

import (
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/experiments"
	"dagcover/internal/verify"
)

// TestIntegrationFullSuite runs the complete pipeline — generate,
// decompose, map both ways under all three libraries, and verify
// functional equivalence — over the extended 10-circuit suite.
// Skipped under -short.
func TestIntegrationFullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite integration test skipped in -short mode")
	}
	suite := bench.FullSuite()
	for _, spec := range []experiments.TableSpec{
		experiments.Table1(),
		experiments.Table2(),
		experiments.Table3(),
	} {
		rows, err := experiments.Run(spec, experiments.Options{Verify: true, Circuits: suite})
		if err != nil {
			t.Fatalf("table %s: %v", spec.ID, err)
		}
		for _, r := range rows {
			if r.DAGDelay > r.TreeDelay+1e-9 {
				t.Errorf("table %s %s: DAG (%v) worse than tree (%v)",
					spec.ID, r.Circuit, r.DAGDelay, r.TreeDelay)
			}
		}
		t.Logf("table %s:\n%s", spec.ID, experiments.Format(spec, rows))
	}
}

// TestIntegrationLUTMappers cross-checks FlowMap and the priority-cut
// mapper on the full suite and verifies every LUT netlist.
func TestIntegrationLUTMappers(t *testing.T) {
	if testing.Short() {
		t.Skip("LUT integration test skipped in -short mode")
	}
	for _, c := range bench.FullSuite() {
		fm, err := MapLUT(c.Network, 4)
		if err != nil {
			t.Fatalf("%s: flowmap: %v", c.Name, err)
		}
		if err := VerifyNetworks(c.Network, fm.Network); err != nil {
			t.Fatalf("%s: flowmap: %v", c.Name, err)
		}
		cm, err := MapLUTArea(c.Network, 4, 0)
		if err != nil {
			t.Fatalf("%s: cutmap: %v", c.Name, err)
		}
		if err := VerifyNetworks(c.Network, cm.Network); err != nil {
			t.Fatalf("%s: cutmap: %v", c.Name, err)
		}
		if cm.OptimalDepth < fm.Depth {
			t.Errorf("%s: cutmap claims depth %d below FlowMap's optimum %d",
				c.Name, cm.OptimalDepth, fm.Depth)
		}
		t.Logf("%s: flowmap depth %d (%d LUTs), cutmap slack-0 depth %d (%d LUTs)",
			c.Name, fm.Depth, fm.LUTs, cm.Depth, cm.LUTs)
	}
}

// TestIntegrationSequential maps and retimes every sequential
// generator.
func TestIntegrationSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("sequential integration test skipped in -short mode")
	}
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		nw   *Network
	}{
		{"correlator8", bench.Correlator(8)},
		{"correlator24", bench.Correlator(24)},
		{"palu4x1", bench.PipelinedALU(4, 1)},
		{"palu8x3", bench.PipelinedALU(8, 3)},
	} {
		res, err := mapper.MapSequential(cfg.nw, nil)
		if err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		if res.PeriodAfter > res.PeriodBefore+1e-9 {
			t.Errorf("%s: retiming worsened period %v -> %v",
				cfg.name, res.PeriodBefore, res.PeriodAfter)
		}
		if err := res.Network.Check(); err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		// The mapped-and-retimed circuit must be cycle-accurately
		// equivalent to the original sequential circuit.
		if err := verify.Sequential(cfg.nw, res.Network, verify.SeqOptions{Cycles: 80}); err != nil {
			t.Fatalf("%s: %v", cfg.name, err)
		}
		t.Logf("%s: comb delay %.2f, period %.2f -> %.2f",
			cfg.name, res.Comb.Delay, res.PeriodBefore, res.PeriodAfter)
	}
}
