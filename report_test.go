package dagcover

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"dagcover/internal/bench"
	"dagcover/internal/obs"
)

// TestTraceExportValidChromeTrace drives the -trace pipeline the CLIs
// use — NewTrace through MapDAG/MapTree/MapLUTTraced, exported with
// WriteChromeTrace — and validates the JSON against the trace_event
// schema (what chrome://tracing and Perfetto accept).
func TestTraceExportValidChromeTrace(t *testing.T) {
	nw := bench.RippleAdder(16)
	mapper, err := NewMapper(Lib443())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTrace()
	if _, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay, Trace: tr, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := mapper.MapTree(nw, &MapOptions{Delay: UnitDelay, Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if _, err := MapLUTTraced(context.Background(), nw, 4, tr); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exported trace is not valid trace_event JSON: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, span := range []string{"core.label", "core.cover", "core.emit", "treemap.dp", "flowmap.label"} {
		if !strings.Contains(out, `"name":"`+span+`"`) {
			t.Errorf("trace missing span %q", span)
		}
	}
}

// TestMapReportTextAndJSONAgree pins the shared-report contract: the
// -v text rendering and the -stats-json rendering come from one
// MapReport, so every figure in the text must round-trip through the
// JSON unchanged.
func TestMapReportTextAndJSONAgree(t *testing.T) {
	nw := bench.RippleAdder(16)
	mapper, err := NewMapper(Lib443())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapDAG(nw, &MapOptions{Delay: UnitDelay})
	if err != nil {
		t.Fatal(err)
	}
	report := NewMapReport(nw.Name, "dag", "unit", Lib443(), res)
	report.SetVerified(true)

	var jsonBuf bytes.Buffer
	if err := report.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded MapReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Cells != res.Cells || decoded.Delay != res.Delay ||
		decoded.PatternsTried != res.PatternsTried ||
		decoded.DuplicatedNodes != res.DuplicatedNodes {
		t.Errorf("JSON report diverges from the result: %+v vs %+v", decoded, res)
	}
	if decoded.Phases != res.Phases {
		t.Errorf("JSON phases %+v != result phases %+v", decoded.Phases, res.Phases)
	}
	if decoded.Verified == nil || !*decoded.Verified {
		t.Error("verified flag lost in JSON round-trip")
	}

	var textBuf bytes.Buffer
	report.WriteText(&textBuf, true)
	text := textBuf.String()
	for _, want := range []string{
		fmt.Sprintf("cells:         %d", res.Cells),
		fmt.Sprintf("delay:         %.3f", res.Delay),
		fmt.Sprintf("patterns tried:     %d", res.PatternsTried),
		"verification:  equivalent",
		"phases:",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("text report missing %q:\n%s", want, text)
		}
	}
	if res.Phases.LabelMillis <= 0 || res.Phases.TotalMillis <= 0 {
		t.Errorf("phase breakdown not filled: %+v", res.Phases)
	}
}

// TestTreePhaseBreakdown checks tree covering reports its DP/emission
// split through the same PhaseBreakdown shape.
func TestTreePhaseBreakdown(t *testing.T) {
	mapper, err := NewMapper(Lib2())
	if err != nil {
		t.Fatal(err)
	}
	res, err := mapper.MapTree(bench.RippleAdder(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases.CoverMillis <= 0 || res.Phases.TotalMillis <= 0 {
		t.Errorf("tree phases not filled: %+v", res.Phases)
	}
	if res.Phases.LabelMillis != 0 {
		t.Errorf("tree covering has no labeling pass, got label %v ms", res.Phases.LabelMillis)
	}
}
