// Benchmark harness: one benchmark per table and figure of the paper,
// plus the ablations of DESIGN.md. Custom metrics report the mapped
// delay/area/cells alongside the wall-clock cost, so a -bench run
// regenerates both the quality and the CPU columns of the tables.
//
//	go test -bench=. -benchmem
//	go test -bench=BenchmarkTable3 -benchtime=1x
package dagcover

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"dagcover/internal/bench"
	"dagcover/internal/blif"
	"dagcover/internal/core"
	"dagcover/internal/cutmap"
	"dagcover/internal/experiments"
	"dagcover/internal/flowmap"
	"dagcover/internal/genlib"
	"dagcover/internal/libgen"
	"dagcover/internal/logic"
	"dagcover/internal/mapping"
	"dagcover/internal/match"
	"dagcover/internal/subject"
	"dagcover/internal/treemap"
)

// tableCase precompiles everything so each benchmark iteration times
// exactly one mapping run (the CPU column of the paper's tables).
type tableCase struct {
	name  string
	graph *subject.Graph
	dagM  *match.Matcher
	treeM *match.Matcher
	delay genlib.DelayModel
}

func tableCases(b *testing.B, spec experiments.TableSpec) []tableCase {
	b.Helper()
	shared, _, err := subject.CompileLibrary(spec.Library, subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	trees, _, err := subject.CompileLibrary(spec.Library, subject.CompileOptions{Share: false})
	if err != nil {
		b.Fatal(err)
	}
	var out []tableCase
	for _, c := range bench.Suite() {
		g, err := subject.FromNetwork(c.Network)
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, tableCase{
			name:  c.Name,
			graph: g,
			dagM:  match.NewMatcher(shared),
			treeM: match.NewMatcher(trees),
			delay: spec.Delay,
		})
	}
	return out
}

func benchTable(b *testing.B, spec experiments.TableSpec) {
	for _, tc := range tableCases(b, spec) {
		b.Run(tc.name+"/tree", func(b *testing.B) {
			var delay, area float64
			var cells int
			for i := 0; i < b.N; i++ {
				res, err := treemap.Map(tc.graph, tc.treeM, treemap.Options{Delay: tc.delay})
				if err != nil {
					b.Fatal(err)
				}
				delay, area, cells = res.Delay, res.Netlist.Area(), res.Netlist.NumCells()
			}
			b.ReportMetric(delay, "delay")
			b.ReportMetric(area, "area")
			b.ReportMetric(float64(cells), "cells")
		})
		b.Run(tc.name+"/dag", func(b *testing.B) {
			var delay, area float64
			var cells, dup int
			for i := 0; i < b.N; i++ {
				res, err := core.Map(tc.graph, tc.dagM, core.Options{Class: match.Standard, Delay: tc.delay})
				if err != nil {
					b.Fatal(err)
				}
				delay, area = res.Delay, res.Netlist.Area()
				cells, dup = res.Netlist.NumCells(), res.Stats.DuplicatedNodes
			}
			b.ReportMetric(delay, "delay")
			b.ReportMetric(area, "area")
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(dup), "dup")
		})
	}
}

// BenchmarkTable1 regenerates Table 1: tree vs DAG covering under the
// lib2-like library with intrinsic pin delays.
func BenchmarkTable1(b *testing.B) { benchTable(b, experiments.Table1()) }

// BenchmarkTable2 regenerates Table 2: the 7-gate 44-1 library with
// unit delay.
func BenchmarkTable2(b *testing.B) { benchTable(b, experiments.Table2()) }

// BenchmarkTable3 regenerates Table 3: the rich 44-3 library with
// unit delay (the paper's headline result).
func BenchmarkTable3(b *testing.B) { benchTable(b, experiments.Table3()) }

// BenchmarkFigure1Matching times match enumeration on the Figure 1
// structure in both classes (the cost of relaxing one-to-one).
func BenchmarkFigure1Matching(b *testing.B) {
	lib := genlib.NewLibrary("fig1")
	e := logic.MustParse("!(a*!b)")
	g := &genlib.Gate{Name: "andnot", Area: 2, Output: "O", Expr: e}
	for _, v := range e.Vars() {
		g.Pins = append(g.Pins, genlib.Pin{Name: v, RiseBlock: 1, FallBlock: 1, InputLoad: 1, MaxLoad: 999})
	}
	if err := lib.Add(g); err != nil {
		b.Fatal(err)
	}
	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(pats)
	sg := subject.NewGraph("fig1", true)
	p, _ := sg.AddPI("p")
	q, _ := sg.AddPI("q")
	n := sg.Nand(p, q)
	top := sg.Nand(n, sg.Not(n))
	for _, class := range []match.Class{match.Standard, match.Extended} {
		b.Run(class.String(), func(b *testing.B) {
			found := 0
			for i := 0; i < b.N; i++ {
				found = len(m.AllMatches(sg, top, class))
			}
			b.ReportMetric(float64(found), "matches")
		})
	}
}

// BenchmarkFigure2Duplication times the Figure 2 mapping in both
// modes; the metrics show the delay-1-vs-2 and duplication effects.
func BenchmarkFigure2Duplication(b *testing.B) {
	lib := genlib.NewLibrary("fig2")
	for _, spec := range []struct {
		name, expr string
		area       float64
	}{{"inv", "!a", 1}, {"nand2", "!(a*b)", 2}, {"ao21n", "a*b+!c", 3}} {
		e := logic.MustParse(spec.expr)
		g := &genlib.Gate{Name: spec.name, Area: spec.area, Output: "O", Expr: e}
		for _, v := range e.Vars() {
			g.Pins = append(g.Pins, genlib.Pin{Name: v, RiseBlock: 1, FallBlock: 1, InputLoad: 1, MaxLoad: 999})
		}
		if err := lib.Add(g); err != nil {
			b.Fatal(err)
		}
	}
	pats, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(pats)
	sg := subject.NewGraph("fig2", true)
	pa, _ := sg.AddPI("a")
	pb, _ := sg.AddPI("b")
	pc, _ := sg.AddPI("c")
	pd, _ := sg.AddPI("d")
	mid := sg.Nand(pa, pb)
	sg.MarkOutput("o1", sg.Nand(mid, pc))
	sg.MarkOutput("o2", sg.Nand(mid, pd))
	for _, mode := range []struct {
		name  string
		class match.Class
	}{{"tree", match.Exact}, {"dag", match.Standard}} {
		b.Run(mode.name, func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				res, err := core.Map(sg, m, core.Options{Class: mode.class, Delay: genlib.UnitDelay{}})
				if err != nil {
					b.Fatal(err)
				}
				delay = res.Delay
			}
			b.ReportMetric(delay, "delay")
		})
	}
}

// BenchmarkFlowMap times the §2 FPGA mapper across k on the suite's
// multiplier (the deepest circuit).
func BenchmarkFlowMap(b *testing.B) {
	g, err := subject.FromNetwork(bench.C6288())
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{3, 4, 5, 6} {
		b.Run(fmt.Sprintf("k%d", k), func(b *testing.B) {
			var depth, luts int
			for i := 0; i < b.N; i++ {
				res, err := flowmap.Map(g, k)
				if err != nil {
					b.Fatal(err)
				}
				depth, luts = res.Depth, res.LUTs
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(luts), "LUTs")
		})
	}
}

// BenchmarkSequential times the §4 flow (map + retime) on pipelined
// circuits.
func BenchmarkSequential(b *testing.B) {
	mapper, err := NewMapper(Lib2())
	if err != nil {
		b.Fatal(err)
	}
	for _, cfg := range []struct {
		name string
		nw   *Network
	}{
		{"palu8x2", bench.PipelinedALU(8, 2)},
		{"palu8x3", bench.PipelinedALU(8, 3)},
		{"correlator16", bench.Correlator(16)},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var before, after float64
			for i := 0; i < b.N; i++ {
				res, err := mapper.MapSequential(cfg.nw, nil)
				if err != nil {
					b.Fatal(err)
				}
				before, after = res.PeriodBefore, res.PeriodAfter
			}
			b.ReportMetric(before, "period0")
			b.ReportMetric(after, "period")
		})
	}
}

// BenchmarkAblationMatchClass compares standard vs extended matching
// cost on the suite under 44-1 (footnote 3: quality is equal; this
// measures the price of the larger search space).
func BenchmarkAblationMatchClass(b *testing.B) {
	spec := experiments.Table2()
	shared, _, err := subject.CompileLibrary(spec.Library, subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(shared)
	g, err := subject.FromNetwork(bench.C2670())
	if err != nil {
		b.Fatal(err)
	}
	for _, class := range []match.Class{match.Standard, match.Extended} {
		b.Run(class.String(), func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, m, core.Options{Class: class, Delay: spec.Delay})
				if err != nil {
					b.Fatal(err)
				}
				delay = res.Delay
			}
			b.ReportMetric(delay, "delay")
		})
	}
}

// BenchmarkAblationLibraryRichness sweeps the maximum AOI group size
// (ablation A2) on an 8x8 multiplier.
func BenchmarkAblationLibraryRichness(b *testing.B) {
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		b.Fatal(err)
	}
	for gs := 1; gs <= 4; gs++ {
		lib := libgen.Rich(fmt.Sprintf("rich-%d", gs), libgen.RichOptions{MaxGroupSize: gs})
		shared, _, err := subject.CompileLibrary(lib, subject.CompileOptions{Share: true})
		if err != nil {
			b.Fatal(err)
		}
		m := match.NewMatcher(shared)
		b.Run(fmt.Sprintf("groupsize%d", gs), func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, m, core.Options{Class: match.Standard, Delay: genlib.UnitDelay{}})
				if err != nil {
					b.Fatal(err)
				}
				delay = res.Delay
			}
			b.ReportMetric(delay, "delay")
			b.ReportMetric(float64(len(lib.Gates)), "gates")
		})
	}
}

// BenchmarkAblationAreaRecovery measures the cost and benefit of the
// slack-driven area recovery pass (ablation A3).
func BenchmarkAblationAreaRecovery(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib2(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(shared)
	g, err := subject.FromNetwork(bench.C5315())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name     string
		recovery bool
	}{{"plain", false}, {"recovery", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var area float64
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, m, core.Options{
					Class: match.Standard, Delay: genlib.IntrinsicDelay{},
					AreaRecovery: mode.recovery,
				})
				if err != nil {
					b.Fatal(err)
				}
				area = res.Netlist.Area()
			}
			b.ReportMetric(area, "area")
		})
	}
}

// BenchmarkParallelLabeling times the full DAG-covering labeling of
// the suite's multiplier under 44-3 across worker counts. Per-count
// results are bit-identical; only the wall clock moves (single-CPU
// hosts will show no speedup — the wavefront only buys time when the
// scheduler has cores to spread the waves over).
func BenchmarkParallelLabeling(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(shared)
	g, err := subject.FromNetwork(bench.C6288())
	if err != nil {
		b.Fatal(err)
	}
	counts := []int{1, 2, 4}
	if n := runtime.NumCPU(); n > 4 {
		counts = append(counts, n)
	}
	var refDelay float64
	var refCells int
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			var delay float64
			var cells int
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, m, core.Options{
					Class: match.Standard, Delay: genlib.UnitDelay{}, Parallelism: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				delay, cells = res.Delay, res.Netlist.NumCells()
			}
			if refCells == 0 {
				refDelay, refCells = delay, cells
			} else if delay != refDelay || cells != refCells {
				b.Fatalf("workers=%d diverged: delay %v cells %d vs %v/%d",
					workers, delay, cells, refDelay, refCells)
			}
			b.ReportMetric(delay, "delay")
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkMemoLabeling isolates the structural match memo on the
// multiplier under 44-3 (the acceptance case): the same labeling run
// with the memo off and on. The memo-on matcher keeps its table across
// iterations, so after the first iteration every node hits and the
// labeling phase replays recipes instead of backtracking — the
// labelWallNs metric is the phase the memo targets. Results must be
// bit-identical in both modes.
func BenchmarkMemoLabeling(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	g, err := subject.FromNetwork(bench.C6288())
	if err != nil {
		b.Fatal(err)
	}
	var refDelay float64
	var refCells int
	for _, mode := range []struct {
		name string
		m    *match.Matcher
	}{
		{"off", match.NewMatcher(shared)},
		{"on", match.NewMatcher(shared, match.WithMemo(match.NewMemo(0)))},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var delay float64
			var cells int
			var labelWall time.Duration
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, mode.m, core.Options{
					Class: match.Standard, Delay: genlib.UnitDelay{},
				})
				if err != nil {
					b.Fatal(err)
				}
				delay, cells = res.Delay, res.Netlist.NumCells()
				labelWall = res.Stats.Phases.LabelWall
			}
			if refCells == 0 {
				refDelay, refCells = delay, cells
			} else if delay != refDelay || cells != refCells {
				b.Fatalf("memo=%s diverged: delay %v cells %d vs %v/%d",
					mode.name, delay, cells, refDelay, refCells)
			}
			b.ReportMetric(float64(labelWall.Nanoseconds()), "labelWallNs")
			b.ReportMetric(delay, "delay")
		})
	}
}

// BenchmarkSignatureIndex isolates the root-signature index: the same
// labeling run with and without it, reporting the pattern plans tried
// per iteration (the index's whole effect is that column plus the
// saved wall clock).
func BenchmarkSignatureIndex(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	g, err := subject.FromNetwork(bench.C6288())
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []struct {
		name string
		m    *match.Matcher
	}{
		{"indexed", match.NewMatcher(shared)},
		{"fullscan", match.NewMatcher(shared, match.WithoutSignatureIndex())},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var tried, matches int
			for i := 0; i < b.N; i++ {
				res, err := core.Map(g, mode.m, core.Options{
					Class: match.Standard, Delay: genlib.UnitDelay{},
				})
				if err != nil {
					b.Fatal(err)
				}
				tried, matches = res.Stats.PatternsTried, res.Stats.MatchesEnumerated
			}
			b.ReportMetric(float64(tried), "plansTried")
			b.ReportMetric(float64(matches), "matches")
		})
	}
}

// BenchmarkMatcherEnumerate is a microbenchmark of the graph-match
// inner loop: all standard matches at every node of the multiplier
// under 44-3.
func BenchmarkMatcherEnumerate(b *testing.B) {
	shared, _, err := subject.CompileLibrary(libgen.Lib443(), subject.CompileOptions{Share: true})
	if err != nil {
		b.Fatal(err)
	}
	m := match.NewMatcher(shared)
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	count := 0
	for i := 0; i < b.N; i++ {
		count = 0
		for j := 0; j < g.NumNodes(); j++ {
			m.Enumerate(g, subject.Node(j), match.Standard, func(*match.Match) bool {
				count++
				return true
			})
		}
	}
	b.ReportMetric(float64(count), "matches")
}

// BenchmarkSubjectBuild times technology decomposition of the suite's
// largest circuit. Run with -benchmem: the allocs/op column is the
// arena regression gate — the SoA core should allocate per growth
// step, not per node.
func BenchmarkSubjectBuild(b *testing.B) {
	nw := bench.C7552()
	b.ReportAllocs()
	b.ResetTimer()
	nodes := 0
	for i := 0; i < b.N; i++ {
		g, err := subject.FromNetwork(nw)
		if err != nil {
			b.Fatal(err)
		}
		nodes = g.NumNodes()
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// BenchmarkIngestStream times the streaming BLIF-to-subject path on a
// generated mult64 (68k subject nodes): bytes in, arena out, no
// network.Network in between. SetBytes turns the result into ingest
// MB/s; -benchmem gives the allocs/op regression column.
func BenchmarkIngestStream(b *testing.B) {
	var buf bytes.Buffer
	if err := bench.StreamMult(&buf, 64); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	rd := &blif.Reader{}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	nodes := 0
	for i := 0; i < b.N; i++ {
		g, err := rd.StreamSubject(bytes.NewReader(data))
		if err != nil {
			b.Fatal(err)
		}
		nodes = g.NumNodes()
	}
	b.ReportMetric(float64(nodes), "nodes")
}

// TestArenaBuildAllocs asserts the arena property directly: appending
// nodes to a Reserve'd graph performs no per-node heap allocation —
// only the strash table's occasional doubling allocates, which
// amortizes to well under one hundredth of an allocation per node.
func TestArenaBuildAllocs(t *testing.T) {
	const rounds = 1 << 14
	g := subject.NewGraph("arena", true)
	g.Reserve(4 * rounds)
	a, err := g.AddPI("a")
	if err != nil {
		t.Fatal(err)
	}
	prev := a
	allocs := testing.AllocsPerRun(rounds, func() {
		// Two fresh nodes per run: an inverter and a NAND neither of
		// which can hit the strash table.
		prev = g.Nand(prev, g.Not(prev))
	})
	perNode := allocs / 2
	if perNode > 0.01 {
		t.Fatalf("arena build allocates %.4f allocations per node, want amortized zero (<= 0.01)", perNode)
	}
	t.Logf("arena build: %d nodes, %.5f allocs/node", g.NumNodes(), perNode)
}

// BenchmarkVerify times the 64-way simulation equivalence check used
// to validate every mapping.
func BenchmarkVerify(b *testing.B) {
	nw := bench.ALU(8)
	mapper, err := NewMapper(Lib2())
	if err != nil {
		b.Fatal(err)
	}
	res, err := mapper.MapDAG(nw, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(nw, res.Netlist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLUTTradeoff sweeps the depth slack in the priority-cut
// area mode (study E4: the area/depth trade-off of the conclusion's
// reference [3]).
func BenchmarkLUTTradeoff(b *testing.B) {
	g, err := subject.FromNetwork(bench.ArrayMultiplier(8))
	if err != nil {
		b.Fatal(err)
	}
	for slack := 0; slack <= 3; slack++ {
		b.Run(fmt.Sprintf("slack%d", slack), func(b *testing.B) {
			var depth, luts int
			for i := 0; i < b.N; i++ {
				res, err := cutmap.Map(g, cutmap.Options{K: 4, Mode: cutmap.ModeArea, Slack: slack})
				if err != nil {
					b.Fatal(err)
				}
				depth, luts = res.Depth, res.LUTs
			}
			b.ReportMetric(float64(depth), "depth")
			b.ReportMetric(float64(luts), "LUTs")
		})
	}
}

// BenchmarkBuffering measures the fanout-buffering post-pass (study
// E3) on a DAG-covered netlist.
func BenchmarkBuffering(b *testing.B) {
	lib := libgen.Lib2()
	mapper, err := NewMapper(lib)
	if err != nil {
		b.Fatal(err)
	}
	res, err := mapper.MapDAG(bench.C5315(), nil)
	if err != nil {
		b.Fatal(err)
	}
	buffer := lib.Buffer()
	b.ResetTimer()
	var loaded float64
	for i := 0; i < b.N; i++ {
		buffered, err := res.Netlist.InsertBuffers(buffer, 16)
		if err != nil {
			b.Fatal(err)
		}
		t, err := buffered.DelayLoaded(mapping.LoadOptions{})
		if err != nil {
			b.Fatal(err)
		}
		loaded = t.Delay
	}
	b.ReportMetric(loaded, "loadedDelay")
}

// BenchmarkChoices measures choice-encoded mapping (study E8) against
// plain DAG covering on the multiplier.
func BenchmarkChoices(b *testing.B) {
	nw := bench.ArrayMultiplier(8)
	mapper, err := NewMapper(Lib441())
	if err != nil {
		b.Fatal(err)
	}
	opt := &MapOptions{Delay: UnitDelay}
	for _, mode := range []string{"plain", "choices"} {
		b.Run(mode, func(b *testing.B) {
			var delay float64
			for i := 0; i < b.N; i++ {
				var res *MapResult
				var err error
				if mode == "plain" {
					res, err = mapper.MapDAG(nw, opt)
				} else {
					res, err = mapper.MapDAGWithChoices(nw, opt)
				}
				if err != nil {
					b.Fatal(err)
				}
				delay = res.Delay
			}
			b.ReportMetric(delay, "delay")
		})
	}
}

// BenchmarkSeqMap times Pan-Liu joint sequential mapping (study E11)
// against the three-step flow.
func BenchmarkSeqMap(b *testing.B) {
	nw := bench.PipelinedALU(8, 2)
	b.Run("joint", func(b *testing.B) {
		var period int
		for i := 0; i < b.N; i++ {
			res, err := MapSequentialLUT(nw, 4)
			if err != nil {
				b.Fatal(err)
			}
			period = res.Period
		}
		b.ReportMetric(float64(period), "period")
	})
	mapper, err := NewMapper(Lib2())
	if err != nil {
		b.Fatal(err)
	}
	b.Run("threestep", func(b *testing.B) {
		var period float64
		for i := 0; i < b.N; i++ {
			res, err := mapper.MapSequential(nw, nil)
			if err != nil {
				b.Fatal(err)
			}
			period = res.PeriodAfter
		}
		b.ReportMetric(period, "period")
	})
}
