package dagcover

import (
	"bytes"
	"testing"

	"dagcover/internal/bench"
)

// renderBLIF maps nw with the given options and renders the netlist.
func renderBLIF(t *testing.T, m *Mapper, nw *Network, opt *MapOptions) []byte {
	t.Helper()
	res, err := m.MapDAG(nw, opt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Netlist.WriteBLIF(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The memo acceptance bar: for every ISCAS circuit, the mapped netlist
// with the memo on is byte-identical to the memo-off netlist at every
// labeling parallelism. One mapper per library is reused across the
// whole suite, so later circuits run against a table warmed by earlier
// ones — the cross-request sharing mode — and must still be identical.
func TestMemoOutputByteIdentical(t *testing.T) {
	suites := []struct {
		lib      *Library
		delay    DelayModel
		circuits []bench.Circuit
	}{
		{Lib441(), UnitDelay, bench.FullSuite()},
		{Lib443(), UnitDelay, []bench.Circuit{
			{Name: "C432", Network: bench.C432()},
			{Name: "C6288", Network: bench.C6288()},
		}},
	}
	if testing.Short() {
		suites[0].circuits = []bench.Circuit{
			{Name: "C432", Network: bench.C432()},
			{Name: "C6288", Network: bench.C6288()},
		}
	}
	for _, s := range suites {
		mapper, err := NewMapper(s.lib)
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range s.circuits {
			ref := renderBLIF(t, mapper, c.Network, &MapOptions{
				Delay: s.delay, Memo: MemoOff,
			})
			for _, par := range []int{1, 4, 8} {
				got := renderBLIF(t, mapper, c.Network, &MapOptions{
					Delay: s.delay, Memo: MemoOn, Parallelism: par,
				})
				if !bytes.Equal(ref, got) {
					t.Errorf("%s x %s: memo-on netlist at parallelism %d differs from memo-off",
						c.Name, s.lib.Name, par)
				}
			}
		}
		if st := mapper.dagMatcher.Memo().Stats(); st.Hits == 0 {
			t.Errorf("%s: suite produced no memo hits — the equality check never exercised replay", s.lib.Name)
		}
	}
}

// Memo counters surface in MapResult: misses on a cold table, hits on
// a warm rerun, a populated table gauge, and an untouched table when
// the run opts out.
func TestMemoCountersInMapResult(t *testing.T) {
	mapper, err := NewMapper(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	nw := bench.C432()
	cold, err := mapper.MapDAG(nw, nil) // Memo defaults on
	if err != nil {
		t.Fatal(err)
	}
	if cold.MemoMisses == 0 {
		t.Error("cold run reported no memo misses")
	}
	if cold.MemoEntries == 0 {
		t.Error("cold run left an empty table")
	}
	warm, err := mapper.MapDAG(nw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if warm.MemoHits == 0 {
		t.Error("warm rerun reported no memo hits")
	}
	if warm.MemoMisses != 0 {
		t.Errorf("warm rerun of the identical circuit missed %d times", warm.MemoMisses)
	}
	off, err := mapper.MapDAG(nw, &MapOptions{Memo: MemoOff})
	if err != nil {
		t.Fatal(err)
	}
	if off.MemoHits != 0 || off.MemoMisses != 0 {
		t.Errorf("memo-off run consulted the table: %d hits, %d misses", off.MemoHits, off.MemoMisses)
	}
	cl, err := CompileLibrary(Lib441())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MapCompiled(nil, nw, nil); err != nil {
		t.Fatal(err)
	}
	if st := cl.MemoStats(); st.Entries == 0 || st.Misses == 0 {
		t.Errorf("library MemoStats empty after a mapped request: %+v", st)
	}
}
